//! Wall-clock throughput harness for the crypto hot path.
//!
//! Every other harness in this crate measures *simulated* quantities
//! (cycles, hit rates, traffic). This one measures the simulator itself:
//! how many AES blocks, memoization-table lookups, and end-to-end secure
//! reads+writes the host executes per wall-clock second. The numbers seed
//! the perf trajectory in `BENCH_hotpath.json` at the repo root, so every
//! later hot-path change is judged against a reproducible baseline.
//!
//! Two kinds of output are strictly separated:
//!
//! * **Deterministic results** — operation counts and checksums of the
//!   computed values. These are byte-identical across runs, hosts, and
//!   `RMCC_JOBS` widths; CI diffs them between a serial and a pooled run.
//! * **Timing** — wall-clock rates. These vary run to run and are reported
//!   for trend tracking only.

use std::time::Instant;

use rmcc_core::table::{MemoizationTable, TableConfig};
use rmcc_crypto::aes::{Aes, Backend, BATCH_BLOCKS};
use rmcc_secmem::counters::CounterOrg;
use rmcc_secmem::engine::{PipelineKind, SecureMemory};
use rmcc_secmem::service::{digest_results, Access, SecureMemoryService, ServiceConfig};
use rmcc_workloads::workload::Scale;

/// SplitMix64 step — the deterministic stream driving every component.
fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Work sizes for one throughput run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputConfig {
    /// AES-128 blocks encrypted in the AES component.
    pub aes_blocks: u64,
    /// Memoization-table lookups in the table component.
    pub table_lookups: u64,
    /// Secure-memory accesses (reads + writes) per shard.
    pub accesses_per_shard: u64,
    /// Independent secure-memory shards; fixed per config so results do not
    /// depend on the worker-pool width.
    pub shards: usize,
    /// Protected bytes per shard's secure memory.
    pub shard_bytes: u64,
    /// Distinct data blocks the access stream touches per shard.
    pub working_blocks: u64,
}

impl ThroughputConfig {
    /// The configuration for a workload scale.
    pub fn from_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => ThroughputConfig {
                aes_blocks: 20_000,
                table_lookups: 200_000,
                accesses_per_shard: 2_000,
                shards: 4,
                shard_bytes: 1 << 22,
                working_blocks: 512,
            },
            Scale::Small => ThroughputConfig {
                aes_blocks: 200_000,
                table_lookups: 2_000_000,
                accesses_per_shard: 20_000,
                shards: 8,
                shard_bytes: 1 << 24,
                working_blocks: 4_096,
            },
            Scale::Full => ThroughputConfig {
                aes_blocks: 1_000_000,
                table_lookups: 10_000_000,
                accesses_per_shard: 100_000,
                shards: 8,
                shard_bytes: 1 << 26,
                working_blocks: 16_384,
            },
        }
    }
}

/// One component's measurement: how much work ran, how long it took, and a
/// checksum over the computed values (the deterministic part).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentResult {
    /// Operations performed.
    pub ops: u64,
    /// Wall-clock seconds the component ran for.
    pub seconds: f64,
    /// Order-independent digest of every value the component computed.
    pub checksum: u64,
}

impl ComponentResult {
    /// Operations per wall-clock second.
    pub fn ops_per_s(&self) -> f64 {
        if self.seconds > 0.0 {
            self.ops as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// A full throughput run: per-component results plus the pool width used
/// for the pooled end-to-end pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Scale name the run was configured from.
    pub scale: String,
    /// Worker-pool width used for the pooled end-to-end pass.
    pub jobs: usize,
    /// Raw AES-128 block encryption (scalar chain, env-selected backend).
    pub aes: ComponentResult,
    /// 8-lane batched AES-128 on the T-table `fast` backend.
    pub aes_fast: ComponentResult,
    /// 8-lane batched AES-128 on the bitsliced `hardened` backend. Must
    /// carry the same checksum as [`ThroughputReport::aes_fast`]: the
    /// backends are ciphertext-identical, only timing may differ.
    pub aes_hardened: ComponentResult,
    /// Memoization-table lookups over a seeded table.
    pub table: ComponentResult,
    /// End-to-end secure-memory reads+writes, all shards on one thread.
    pub e2e_serial: ComponentResult,
    /// The same shards fanned across the worker pool.
    pub e2e_pooled: ComponentResult,
    /// Batched end-to-end service submits on the `fast` backend.
    pub e2e_batched_fast: ComponentResult,
    /// The same batched submits on the `hardened` backend; checksum must
    /// match [`ThroughputReport::e2e_batched_fast`].
    pub e2e_batched_hardened: ComponentResult,
}

impl ThroughputReport {
    /// The deterministic results as one canonical JSON line — byte-identical
    /// across runs and pool widths. CI diffs this between serial and pooled
    /// invocations.
    pub fn deterministic_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"rmcc-bench-hotpath-v2\",",
                "\"aes_blocks\":{},\"aes_checksum\":\"{:#018x}\",",
                "\"aes_batched_blocks\":{},\"aes_batched_checksum\":\"{:#018x}\",",
                "\"table_lookups\":{},\"table_checksum\":\"{:#018x}\",",
                "\"e2e_accesses\":{},\"e2e_checksum\":\"{:#018x}\",",
                "\"e2e_batched_accesses\":{},\"e2e_batched_checksum\":\"{:#018x}\",",
                "\"pooled_matches_serial\":{},",
                "\"backends_match\":{}}}"
            ),
            self.aes.ops,
            self.aes.checksum,
            self.aes_fast.ops,
            self.aes_fast.checksum,
            self.table.ops,
            self.table.checksum,
            self.e2e_serial.ops,
            self.e2e_serial.checksum,
            self.e2e_batched_fast.ops,
            self.e2e_batched_fast.checksum,
            self.e2e_serial.checksum == self.e2e_pooled.checksum
                && self.e2e_serial.ops == self.e2e_pooled.ops,
            self.backends_match(),
        )
    }

    /// Whether the fast and hardened backends computed bit-identical
    /// results on both the batched-AES and batched-e2e workloads. `false`
    /// is always a bug — the backends are ciphertext-identical by
    /// contract — and the bench binary gates on it.
    pub fn backends_match(&self) -> bool {
        self.aes_fast.checksum == self.aes_hardened.checksum
            && self.aes_fast.ops == self.aes_hardened.ops
            && self.e2e_batched_fast.checksum == self.e2e_batched_hardened.checksum
            && self.e2e_batched_fast.ops == self.e2e_batched_hardened.ops
    }

    /// The full report (deterministic results + timing) as pretty JSON, the
    /// content of `BENCH_hotpath.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"rmcc-bench-hotpath-v2\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str("  \"deterministic\": ");
        out.push_str(&self.deterministic_json());
        out.push_str(",\n  \"timing\": {\n");
        out.push_str(&format!(
            "    \"aes_blocks_per_s\": {:.1},\n",
            self.aes.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"aes_fast_blocks_per_s\": {:.1},\n",
            self.aes_fast.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"aes_hardened_blocks_per_s\": {:.1},\n",
            self.aes_hardened.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"table_lookups_per_s\": {:.1},\n",
            self.table.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"e2e_serial_accesses_per_s\": {:.1},\n",
            self.e2e_serial.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"e2e_pooled_accesses_per_s\": {:.1},\n",
            self.e2e_pooled.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"e2e_batched_fast_accesses_per_s\": {:.1},\n",
            self.e2e_batched_fast.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"e2e_batched_hardened_accesses_per_s\": {:.1}\n",
            self.e2e_batched_hardened.ops_per_s()
        ));
        out.push_str("  }\n}\n");
        out
    }
}

/// Raw AES throughput: a data-dependent encryption chain (each input is the
/// previous ciphertext XOR a counter), so the compiler cannot batch or
/// elide blocks.
fn bench_aes(blocks: u64) -> ComponentResult {
    let aes = Aes::new_128(&[0x42u8; 16]);
    let start = Instant::now();
    let mut state = 0x0123_4567_89ab_cdef_u128;
    let mut checksum = 0u64;
    for i in 0..blocks {
        state = aes.encrypt_u128(state ^ u128::from(i));
        checksum = checksum
            .rotate_left(1)
            .wrapping_add((state >> 64) as u64 ^ state as u64);
    }
    ComponentResult {
        ops: blocks,
        seconds: start.elapsed().as_secs_f64(),
        checksum,
    }
}

/// 8-lane batched AES throughput on an explicit backend: eight
/// independent data-dependent chains advance in lockstep through
/// `encrypt_u128_batch8`, so the workload (and therefore the checksum) is
/// identical for every backend while the per-block rate reflects each
/// backend's batch economics.
fn bench_aes_batched_on(blocks: u64, backend: Backend) -> ComponentResult {
    let aes = Aes::new_128_on(&[0x42u8; 16], backend);
    let rounds = blocks / BATCH_BLOCKS as u64;
    let mut lanes = [0u128; BATCH_BLOCKS];
    for (lane, slot) in lanes.iter_mut().enumerate() {
        *slot = 0x0123_4567_89ab_cdef ^ ((lane as u128) << 96);
    }
    let start = Instant::now();
    let mut checksum = 0u64;
    for i in 0..rounds {
        for slot in lanes.iter_mut() {
            *slot ^= u128::from(i);
        }
        lanes = aes.encrypt_u128_batch8(lanes);
        for state in lanes {
            checksum = checksum
                .rotate_left(1)
                .wrapping_add((state >> 64) as u64 ^ state as u64);
        }
    }
    ComponentResult {
        ops: rounds * BATCH_BLOCKS as u64,
        seconds: start.elapsed().as_secs_f64(),
        checksum,
    }
}

/// Memoization-table lookup throughput over the paper's 16×8 geometry,
/// driven by a seeded value stream concentrated around the live groups
/// (realistic hit mix: mostly group hits, a tail of misses).
fn bench_table(lookups: u64) -> ComponentResult {
    let mut table = MemoizationTable::new(TableConfig::paper());
    table.seed_groups((0..16u64).map(|g| 50_000 + g * 6_400));
    let mut rng = 0x0007_ab1e_5eed_u64;
    let start = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..lookups {
        let r = splitmix(&mut rng);
        // 7 in 8 lookups land inside a live group; the rest scatter.
        let value = if !r.is_multiple_of(8) {
            50_000 + (r >> 8) % 16 * 6_400 + (r >> 16) % 8
        } else {
            (r >> 8) % 200_000
        };
        let hit = table.lookup(value).is_hit();
        checksum = checksum.rotate_left(1).wrapping_add(u64::from(hit));
    }
    ComponentResult {
        ops: lookups,
        seconds: start.elapsed().as_secs_f64(),
        checksum,
    }
}

/// Runs one end-to-end shard to completion and returns its checksum: a
/// digest over every decrypted byte and final counter the shard produced.
fn run_shard(cfg: &ThroughputConfig, shard: usize) -> u64 {
    let mut mem = SecureMemory::new(
        CounterOrg::Morphable128,
        cfg.shard_bytes,
        PipelineKind::Rmcc,
        0x5eed_0000 + shard as u64,
    );
    let blocks = cfg.working_blocks.min(cfg.shard_bytes / 64);
    let mut rng = 0xfeed_f00d ^ (shard as u64) << 32;
    let mut checksum = 0u64;
    // Warm-up: every block in the working set gets an initial write, so the
    // measured loop runs in steady state (all metadata materialized).
    for b in 0..blocks {
        let mut pt = [0u8; 64];
        pt[0] = b as u8;
        pt[7] = shard as u8;
        if mem.write(b, pt).is_err() {
            return 0;
        }
    }
    for i in 0..cfg.accesses_per_shard {
        let r = splitmix(&mut rng);
        let block = r % blocks;
        if r & 0x100 == 0 {
            let mut pt = [0u8; 64];
            pt[..8].copy_from_slice(&r.to_be_bytes());
            pt[56..].copy_from_slice(&i.to_be_bytes());
            if mem.write(block, pt).is_err() {
                return 0;
            }
            checksum = checksum.rotate_left(3).wrapping_add(r);
        } else {
            match mem.read(block) {
                Ok(data) => {
                    let folded = data.chunks_exact(8).fold(0u64, |acc, c| {
                        acc ^ c.iter().fold(0u64, |w, &b| (w << 8) | u64::from(b))
                    });
                    checksum = checksum.rotate_left(3).wrapping_add(folded);
                }
                Err(_) => return 0,
            }
        }
    }
    checksum.wrapping_add(mem.counter_of(0))
}

/// Runs every shard on the calling thread, in order.
fn bench_e2e_serial(cfg: &ThroughputConfig) -> ComponentResult {
    let start = Instant::now();
    let mut checksum = 0u64;
    for shard in 0..cfg.shards {
        checksum ^= run_shard(cfg, shard).rotate_left(shard as u32);
    }
    ComponentResult {
        ops: cfg.accesses_per_shard * cfg.shards as u64,
        seconds: start.elapsed().as_secs_f64(),
        checksum,
    }
}

/// Fans the same shards across `jobs` workers. Shards are independent and
/// combined with a shard-indexed rotation, so the digest is identical to
/// the serial pass at any pool width.
fn bench_e2e_pooled(cfg: &ThroughputConfig, jobs: usize) -> ComponentResult {
    let jobs = jobs.clamp(1, cfg.shards);
    if jobs == 1 {
        return bench_e2e_serial(cfg);
    }
    let start = Instant::now();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<u64>> =
        (0..cfg.shards).map(|_| std::sync::Mutex::new(0)).collect();
    std::thread::scope(|scope| {
        let next = &next;
        let slots = &slots;
        for _ in 0..jobs {
            scope.spawn(move || loop {
                let shard = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if shard >= cfg.shards {
                    break;
                }
                let digest = run_shard(cfg, shard);
                if let Some(slot) = slots.get(shard) {
                    if let Ok(mut guard) = slot.lock() {
                        *guard = digest;
                    }
                }
            });
        }
    });
    let checksum = slots.iter().enumerate().fold(0u64, |acc, (shard, slot)| {
        acc ^ slot.lock().map_or(0, |g| *g).rotate_left(shard as u32)
    });
    ComponentResult {
        ops: cfg.accesses_per_shard * cfg.shards as u64,
        seconds: start.elapsed().as_secs_f64(),
        checksum,
    }
}

/// Batched end-to-end throughput through the sharded service on an
/// explicit backend: warm writes, then a deterministic mixed stream
/// submitted in wide batches so the per-shard pad-prefetch seam (8-block
/// OTP groups) is on the measured path. The access stream is
/// backend-independent, so the checksum must match across backends.
fn bench_e2e_batched_on(cfg: &ThroughputConfig, backend: Backend) -> ComponentResult {
    let svc_cfg = ServiceConfig::new(cfg.shards, cfg.shard_bytes).with_backend(backend);
    let svc = SecureMemoryService::new(&svc_cfg);
    let blocks = (cfg.working_blocks * cfg.shards as u64).min(cfg.shard_bytes / 64);
    let warm: Vec<Access> = (0..blocks)
        .map(|b| {
            let mut pt = [0u8; 64];
            pt[0] = b as u8;
            pt[7] = (b >> 8) as u8;
            Access::Write { block: b, data: pt }
        })
        .collect();
    let total = cfg.accesses_per_shard * cfg.shards as u64;
    let start = Instant::now();
    let mut checksum = digest_results(&svc.submit(&warm));
    let mut rng = 0xbead_cafe_5eed_u64;
    let mut batch = Vec::with_capacity(512);
    let mut submitted = 0u64;
    while submitted < total {
        batch.clear();
        let width = 512.min(total - submitted) as usize;
        for i in 0..width {
            let r = splitmix(&mut rng);
            let block = r % blocks;
            if r & 0x100 == 0 {
                let mut pt = [0u8; 64];
                pt[..8].copy_from_slice(&r.to_be_bytes());
                pt[56..].copy_from_slice(&(submitted + i as u64).to_be_bytes());
                batch.push(Access::Write { block, data: pt });
            } else {
                batch.push(Access::Read { block });
            }
        }
        checksum = checksum
            .rotate_left(3)
            .wrapping_add(digest_results(&svc.submit(&batch)));
        submitted += width as u64;
    }
    let shard_digest = (0..cfg.shards).fold(0u64, |acc, s| {
        acc ^ svc.shard_state_digest(s).unwrap_or(0).rotate_left(s as u32)
    });
    ComponentResult {
        ops: total,
        seconds: start.elapsed().as_secs_f64(),
        checksum: checksum.wrapping_add(shard_digest),
    }
}

/// Runs the full harness: AES (scalar + per-backend batched), table,
/// end-to-end serial/pooled, and per-backend batched service submits.
pub fn run(scale: Scale, jobs: usize) -> ThroughputReport {
    let cfg = ThroughputConfig::from_scale(scale);
    ThroughputReport {
        scale: scale.to_string(),
        jobs,
        aes: bench_aes(cfg.aes_blocks),
        aes_fast: bench_aes_batched_on(cfg.aes_blocks, Backend::Fast),
        aes_hardened: bench_aes_batched_on(cfg.aes_blocks, Backend::Hardened),
        table: bench_table(cfg.table_lookups),
        e2e_serial: bench_e2e_serial(&cfg),
        e2e_pooled: bench_e2e_pooled(&cfg, jobs),
        e2e_batched_fast: bench_e2e_batched_on(&cfg, Backend::Fast),
        e2e_batched_hardened: bench_e2e_batched_on(&cfg, Backend::Hardened),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_deterministic_and_distinct() {
        let cfg = ThroughputConfig {
            aes_blocks: 10,
            table_lookups: 10,
            accesses_per_shard: 50,
            shards: 2,
            shard_bytes: 1 << 20,
            working_blocks: 32,
        };
        let a = run_shard(&cfg, 0);
        assert_eq!(a, run_shard(&cfg, 0), "same shard, same digest");
        assert_ne!(a, run_shard(&cfg, 1), "different shards diverge");
        assert_ne!(a, 0, "a zero digest signals an engine error");
    }

    #[test]
    fn pooled_matches_serial_at_any_width() {
        let cfg = ThroughputConfig {
            aes_blocks: 10,
            table_lookups: 10,
            accesses_per_shard: 40,
            shards: 3,
            shard_bytes: 1 << 20,
            working_blocks: 16,
        };
        let serial = bench_e2e_serial(&cfg);
        for jobs in [1, 2, 7] {
            let pooled = bench_e2e_pooled(&cfg, jobs);
            assert_eq!(serial.checksum, pooled.checksum, "jobs = {jobs}");
            assert_eq!(serial.ops, pooled.ops);
        }
    }

    fn sample_report() -> ThroughputReport {
        let c = |ops: u64, seconds: f64, checksum: u64| ComponentResult {
            ops,
            seconds,
            checksum,
        };
        ThroughputReport {
            scale: "tiny".to_string(),
            jobs: 1,
            aes: c(1, 0.5, 2),
            aes_fast: c(8, 0.5, 9),
            aes_hardened: c(8, 0.25, 9),
            table: c(3, 0.5, 4),
            e2e_serial: c(5, 0.5, 6),
            e2e_pooled: c(5, 0.25, 6),
            e2e_batched_fast: c(7, 0.5, 11),
            e2e_batched_hardened: c(7, 0.25, 11),
        }
    }

    #[test]
    fn report_json_has_the_schema_markers() {
        let report = sample_report();
        let det = report.deterministic_json();
        assert!(det.contains("\"schema\":\"rmcc-bench-hotpath-v2\""));
        assert!(det.contains("\"pooled_matches_serial\":true"));
        assert!(det.contains("\"backends_match\":true"));
        let full = report.to_json();
        assert!(full.contains("\"aes_blocks_per_s\": 2.0"));
        assert!(full.contains("\"aes_fast_blocks_per_s\": 16.0"));
        assert!(full.contains("\"aes_hardened_blocks_per_s\": 32.0"));
        assert!(full.contains("\"e2e_pooled_accesses_per_s\": 20.0"));
        assert!(full.contains("\"e2e_batched_hardened_accesses_per_s\": 28.0"));
    }

    #[test]
    fn backend_divergence_is_visible_in_the_deterministic_line() {
        let mut report = sample_report();
        assert!(report.backends_match());
        report.aes_hardened.checksum ^= 1;
        assert!(!report.backends_match());
        assert!(report
            .deterministic_json()
            .contains("\"backends_match\":false"));
    }

    #[test]
    fn batched_aes_checksums_agree_across_backends() {
        let fast = bench_aes_batched_on(64, Backend::Fast);
        let hardened = bench_aes_batched_on(64, Backend::Hardened);
        let reference = bench_aes_batched_on(64, Backend::Reference);
        assert_eq!(fast.checksum, hardened.checksum);
        assert_eq!(fast.checksum, reference.checksum);
        assert_eq!(fast.ops, 64);
    }

    #[test]
    fn batched_e2e_checksums_agree_across_backends() {
        let cfg = ThroughputConfig {
            aes_blocks: 10,
            table_lookups: 10,
            accesses_per_shard: 40,
            shards: 2,
            shard_bytes: 1 << 20,
            working_blocks: 16,
        };
        let fast = bench_e2e_batched_on(&cfg, Backend::Fast);
        let hardened = bench_e2e_batched_on(&cfg, Backend::Hardened);
        assert_eq!(fast.checksum, hardened.checksum);
        assert_eq!(fast.ops, hardened.ops);
        assert_ne!(fast.checksum, 0, "zero digest signals a service error");
    }
}
