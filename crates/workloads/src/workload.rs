//! The benchmark registry: the eleven workloads of the paper's evaluation,
//! with size presets.
//!
//! Figure 3's x-axis order is preserved by [`Workload::ALL`]: the eight
//! GraphBig kernels, then `canneal`, `omnetpp`, and `mcf`.

use crate::graph::{rmat, Csr, RmatParams};
use crate::kernels::graph as gk;
use crate::kernels::spec::{canneal, mcf, omnetpp, CannealParams, McfParams, OmnetppParams};
use crate::trace::{Recorder, TraceSink, TraceSource};

/// Problem-size presets.
///
/// `Tiny` is for unit tests, `Small` for quick benches (seconds), and `Full`
/// for the headline experiments, whose footprints (tens of MB — scaled from
/// the paper's multi-GB inputs to keep simulation tractable) exceed the
/// modeled LLC by an order of magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Unit-test sized: sub-MB footprints, <100 K events.
    Tiny,
    /// Bench sized: a few MB, a few million events.
    Small,
    /// Experiment sized: tens of MB, tens of millions of events.
    Full,
}

impl Scale {
    fn graph_params(self) -> RmatParams {
        match self {
            Scale::Tiny => RmatParams::graph500(9, 4, 0xa11ce),
            Scale::Small => RmatParams::graph500(20, 4, 0xa11ce),
            Scale::Full => RmatParams::graph500(21, 8, 0xa11ce),
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Tiny => write!(f, "tiny"),
            Scale::Small => write!(f, "small"),
            Scale::Full => write!(f, "full"),
        }
    }
}

/// Builds the shared R-MAT input graph for a scale. Experiments that run
/// several graph workloads should build this once and pass it to
/// [`Workload::run_on`].
pub fn graph_for(scale: Scale) -> Csr {
    rmat(scale.graph_params())
}

/// Why a workload could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// A graph kernel was asked to run without an input graph.
    MissingGraph {
        /// The workload that needed the graph.
        workload: Workload,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::MissingGraph { workload } => {
                write!(f, "graph workload {workload} needs an input graph")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// One of the paper's eleven evaluated workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// GraphBig PageRank.
    PageRank,
    /// GraphBig greedy graph coloring.
    GraphColoring,
    /// GraphBig connected components (label propagation).
    ConnectedComp,
    /// GraphBig degree centrality.
    DegreeCentr,
    /// GraphBig depth-first search.
    Dfs,
    /// GraphBig breadth-first search.
    Bfs,
    /// GraphBig triangle counting.
    TriangleCount,
    /// GraphBig single-source shortest paths.
    ShortestPath,
    /// PARSEC canneal (simulated annealing).
    Canneal,
    /// SPEC omnetpp (discrete-event simulation).
    Omnetpp,
    /// SPEC mcf (network simplex).
    Mcf,
}

impl Workload {
    /// All workloads in Figure 3's plotting order.
    pub const ALL: [Workload; 11] = [
        Workload::PageRank,
        Workload::GraphColoring,
        Workload::ConnectedComp,
        Workload::DegreeCentr,
        Workload::Dfs,
        Workload::Bfs,
        Workload::TriangleCount,
        Workload::ShortestPath,
        Workload::Canneal,
        Workload::Omnetpp,
        Workload::Mcf,
    ];

    /// The paper's label for the workload (Figure 3 x-axis).
    pub fn name(self) -> &'static str {
        match self {
            Workload::PageRank => "pageRank",
            Workload::GraphColoring => "graphColoring",
            Workload::ConnectedComp => "connectedComp",
            Workload::DegreeCentr => "degreeCentr",
            Workload::Dfs => "DFS",
            Workload::Bfs => "BFS",
            Workload::TriangleCount => "triangleCount",
            Workload::ShortestPath => "shortestPath",
            Workload::Canneal => "canneal",
            Workload::Omnetpp => "omnetpp",
            Workload::Mcf => "mcf",
        }
    }

    /// Whether the workload consumes the shared R-MAT graph.
    pub fn uses_graph(self) -> bool {
        !matches!(self, Workload::Canneal | Workload::Omnetpp | Workload::Mcf)
    }

    /// Runs the workload at `scale`, streaming its trace into `sink`.
    /// Graph workloads build their own input; prefer [`Workload::run_on`]
    /// when running several against the same graph.
    ///
    /// # Errors
    ///
    /// Infallible in practice (the input graph is built on demand), but
    /// typed like [`Workload::run_on`] so callers handle one shape.
    pub fn run(self, scale: Scale, sink: &mut dyn TraceSink) -> Result<(), WorkloadError> {
        if self.uses_graph() {
            let g = graph_for(scale);
            self.run_on(Some(&g), scale, sink)
        } else {
            self.run_on(None, scale, sink)
        }
    }

    /// Packages the workload as a streaming [`TraceSource`], building its
    /// own input graph if it needs one. Each [`TraceSource::stream`] call
    /// re-executes the kernel; no event is ever buffered.
    pub fn source(self, scale: Scale) -> WorkloadSource<'static> {
        let graph = if self.uses_graph() {
            GraphSlot::Owned(graph_for(scale))
        } else {
            GraphSlot::Absent
        };
        WorkloadSource {
            workload: self,
            scale,
            graph,
        }
    }

    /// Packages the workload as a streaming [`TraceSource`] that borrows a
    /// pre-built graph (the cheap path when several graph kernels share one
    /// input). Streaming a graph workload built with `graph: None` emits
    /// nothing; [`WorkloadSource::try_stream`] reports the typed error.
    pub fn source_on(self, graph: Option<&Csr>, scale: Scale) -> WorkloadSource<'_> {
        let graph = match graph {
            Some(g) => GraphSlot::Borrowed(g),
            None => GraphSlot::Absent,
        };
        WorkloadSource {
            workload: self,
            scale,
            graph,
        }
    }

    /// Runs the workload, borrowing a pre-built graph for graph kernels.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::MissingGraph`] — before emitting any event
    /// — if the workload [`Workload::uses_graph`] but `graph` is `None`.
    pub fn run_on(
        self,
        graph: Option<&Csr>,
        scale: Scale,
        sink: &mut dyn TraceSink,
    ) -> Result<(), WorkloadError> {
        if self.uses_graph() && graph.is_none() {
            return Err(WorkloadError::MissingGraph { workload: self });
        }
        let mut rec = Recorder::new(sink);
        // Guarded above: every arm that calls `g()` is a graph kernel, and
        // graph kernels with `None` already returned the typed error.
        let g = || graph.expect("graph kernels validated above");
        match self {
            Workload::PageRank => {
                let iters = match scale {
                    Scale::Tiny => 2,
                    Scale::Small => 2,
                    Scale::Full => 1,
                };
                let _ = gk::page_rank(g(), iters, &mut rec);
            }
            Workload::GraphColoring => {
                let _ = gk::graph_coloring(g(), &mut rec);
            }
            Workload::ConnectedComp => {
                let iters = match scale {
                    Scale::Tiny => 32,
                    Scale::Small => 2,
                    Scale::Full => 2,
                };
                let _ = gk::connected_components(g(), iters, &mut rec);
            }
            Workload::DegreeCentr => {
                let _ = gk::degree_centrality(g(), &mut rec);
            }
            Workload::Dfs => {
                let _ = gk::dfs(g(), &mut rec);
            }
            Workload::Bfs => {
                let _ = gk::bfs(g(), &mut rec);
            }
            Workload::TriangleCount => {
                let cap = match scale {
                    Scale::Tiny => usize::MAX,
                    Scale::Small => 120_000,
                    Scale::Full => 400_000,
                };
                let _ = gk::triangle_count(g(), cap, &mut rec);
            }
            Workload::ShortestPath => {
                let rounds = match scale {
                    Scale::Tiny => 8,
                    Scale::Small => 2,
                    Scale::Full => 2,
                };
                let _ = gk::shortest_path(g(), 0, rounds, &mut rec);
            }
            Workload::Canneal => {
                let p = match scale {
                    Scale::Tiny => CannealParams {
                        elements: 1 << 12,
                        swaps: 5_000,
                        seed: 0xca,
                    },
                    Scale::Small => CannealParams {
                        elements: 1 << 21,
                        swaps: 700_000,
                        seed: 0xca,
                    },
                    Scale::Full => CannealParams {
                        elements: 1 << 23,
                        swaps: 2_200_000,
                        seed: 0xca,
                    },
                };
                let _ = canneal(p, &mut rec);
            }
            Workload::Omnetpp => {
                let p = match scale {
                    Scale::Tiny => OmnetppParams {
                        modules: 1 << 12,
                        events: 10_000,
                        seed: 0x03,
                    },
                    Scale::Small => OmnetppParams {
                        modules: 1 << 20,
                        events: 400_000,
                        seed: 0x03,
                    },
                    Scale::Full => OmnetppParams {
                        modules: 1 << 22,
                        events: 1_200_000,
                        seed: 0x03,
                    },
                };
                let _ = omnetpp(p, &mut rec);
            }
            Workload::Mcf => {
                let p = match scale {
                    Scale::Tiny => McfParams {
                        arcs: 1 << 14,
                        nodes: 1 << 10,
                        passes: 2,
                        seed: 0x6f,
                    },
                    Scale::Small => McfParams {
                        arcs: 1 << 21,
                        nodes: 1 << 17,
                        passes: 1,
                        seed: 0x6f,
                    },
                    Scale::Full => McfParams {
                        arcs: 1 << 22,
                        nodes: 1 << 18,
                        passes: 2,
                        seed: 0x6f,
                    },
                };
                let _ = mcf(p, &mut rec);
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a [`WorkloadSource`] holds its input graph.
#[derive(Debug, Clone)]
enum GraphSlot<'g> {
    /// Non-graph workload (or the caller chose to let `run_on` panic).
    Absent,
    /// Borrowing a shared pre-built graph.
    Borrowed(&'g Csr),
    /// Owning a graph built by [`Workload::source`].
    Owned(Csr),
}

/// A live workload kernel packaged as a [`TraceSource`].
///
/// Each [`TraceSource::stream`] call executes the kernel from scratch
/// against its arena, pushing events into the sink as they happen — the
/// trace is never materialized. Kernels are deterministic, so repeated
/// streams produce identical event sequences.
///
/// # Examples
///
/// ```
/// use rmcc_workloads::trace::{CountingSink, TraceSource};
/// use rmcc_workloads::workload::{Scale, Workload};
///
/// let mut source = Workload::Mcf.source(Scale::Tiny);
/// let mut counts = CountingSink::default();
/// source.stream(&mut counts);
/// assert!(counts.reads > 0);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSource<'g> {
    workload: Workload,
    scale: Scale,
    graph: GraphSlot<'g>,
}

impl WorkloadSource<'_> {
    /// The workload this source executes.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The scale this source executes at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Streams one complete run, reporting the typed error a misconfigured
    /// source would otherwise swallow.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::MissingGraph`] — before emitting any event
    /// — for a graph workload built over [`Workload::source_on`] with
    /// `graph: None`.
    pub fn try_stream(&mut self, sink: &mut dyn TraceSink) -> Result<(), WorkloadError> {
        let graph = match &self.graph {
            GraphSlot::Absent => None,
            GraphSlot::Borrowed(g) => Some(*g),
            GraphSlot::Owned(g) => Some(g),
        };
        self.workload.run_on(graph, self.scale, sink)
    }
}

impl TraceSource for WorkloadSource<'_> {
    /// Streams one complete run. The trait is infallible, so a graph
    /// workload missing its graph streams zero events; use
    /// [`WorkloadSource::try_stream`] to observe the typed error instead.
    fn stream(&mut self, sink: &mut dyn TraceSink) {
        let _ = self.try_stream(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CountingSink;

    #[test]
    fn all_has_paper_order_and_unique_names() {
        assert_eq!(Workload::ALL.len(), 11);
        assert_eq!(Workload::ALL[0].name(), "pageRank");
        assert_eq!(Workload::ALL[8].name(), "canneal");
        assert_eq!(Workload::ALL[10].name(), "mcf");
        let names: std::collections::HashSet<&str> =
            Workload::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn every_workload_emits_a_tiny_trace() {
        let g = graph_for(Scale::Tiny);
        for w in Workload::ALL {
            let mut sink = CountingSink::default();
            w.run_on(w.uses_graph().then_some(&g), Scale::Tiny, &mut sink)
                .expect("graph provided");
            assert!(sink.reads > 100, "{w} traced only {} reads", sink.reads);
            assert!(sink.writes > 0, "{w} traced no writes");
        }
    }

    #[test]
    fn run_builds_graph_when_needed() {
        let mut sink = CountingSink::default();
        Workload::Bfs.run(Scale::Tiny, &mut sink).expect("run");
        assert!(sink.reads > 0);
    }

    #[test]
    fn graph_workload_without_graph_is_a_typed_error() {
        let mut sink = CountingSink::default();
        let err = Workload::PageRank
            .run_on(None, Scale::Tiny, &mut sink)
            .expect_err("graph kernel must refuse to run graphless");
        assert_eq!(
            err,
            WorkloadError::MissingGraph {
                workload: Workload::PageRank
            }
        );
        assert!(err.to_string().contains("pageRank"));
        assert_eq!(sink.reads + sink.writes, 0, "no events before the error");
    }

    #[test]
    fn source_streams_the_same_trace_as_run_on() {
        let g = graph_for(Scale::Tiny);
        for w in [Workload::Bfs, Workload::Canneal] {
            let mut direct: Vec<crate::trace::TraceEvent> = Vec::new();
            w.run_on(w.uses_graph().then_some(&g), Scale::Tiny, &mut direct)
                .expect("graph provided");
            let mut streamed: Vec<crate::trace::TraceEvent> = Vec::new();
            w.source_on(w.uses_graph().then_some(&g), Scale::Tiny)
                .stream(&mut streamed);
            assert_eq!(direct, streamed, "{w}");
        }
    }

    #[test]
    fn owned_source_builds_its_graph_and_restreams() {
        let mut src = Workload::PageRank.source(Scale::Tiny);
        let mut a = CountingSink::default();
        src.stream(&mut a);
        let mut b = CountingSink::default();
        src.stream(&mut b);
        assert!(a.reads > 0);
        assert_eq!(a, b, "re-streaming must be deterministic");
        assert_eq!(src.workload(), Workload::PageRank);
        assert_eq!(src.scale(), Scale::Tiny);
    }

    #[test]
    fn graph_source_without_graph_reports_typed_error() {
        let mut sink = CountingSink::default();
        let mut src = Workload::Bfs.source_on(None, Scale::Tiny);
        let err = src.try_stream(&mut sink).expect_err("missing graph");
        assert_eq!(
            err,
            WorkloadError::MissingGraph {
                workload: Workload::Bfs
            }
        );
        // The infallible trait path streams nothing rather than panicking.
        src.stream(&mut sink);
        assert_eq!(sink.reads + sink.writes, 0);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(Workload::Dfs.to_string(), "DFS");
        assert_eq!(Scale::Small.to_string(), "small");
    }

    #[test]
    fn graph_for_scales() {
        assert_eq!(graph_for(Scale::Tiny).n_vertices(), 512);
    }
}
