//! The serving-scale workload corpus: synthetic traffic generators for the
//! "millions of users" scenario class (ROADMAP item 4).
//!
//! Where [`crate::kernels`] replays SPEC/GraphBig-style *program* behavior,
//! this module generates *service* behavior: multi-tenant key-value traffic
//! with zipfian popularity, phase changes, and adversarial locality. Every
//! generator is a pure integer function of its config — no floats, no
//! platform-dependent math — so streams are bit-identical on every host,
//! and every generator implements [`TraceSource`] so it plugs into the same
//! pipeline as live kernels and recorded traces.
//!
//! The module also owns the shared integer zipfian sampler ([`zipf_rank`])
//! used by the simulator's service runner and the bench harness. Earlier
//! revisions clamped the top octave's out-of-range mass onto rank `n - 1`
//! (`.min(n - 1)`), which put a spurious probability spike on the last key
//! whenever `n` was not a power of two; the sampler here folds that mass
//! back into the head instead.

use crate::trace::{TraceEvent, TraceSink, TraceSource};

/// SplitMix64: the repo-wide deterministic PRNG step. One multiply-xorshift
/// chain per draw; passes through every u64 state exactly once.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A ~1/x-distributed rank in `[0, n)`: picks a binary octave uniformly,
/// then a uniform element inside it, so each octave carries equal mass —
/// the integer-only analogue of a Zipf(s = 1) inverse CDF. All-integer on
/// purpose: no `exp`/`ln`, so the stream is bit-identical on every
/// platform.
///
/// When `n` is not a power of two the top octave extends past `n - 1`; the
/// out-of-range mass is folded back onto the head (`r - n`, always in
/// range because the largest candidate is `2n - 2`) rather than clamped
/// onto rank `n - 1`, so no key receives a spurious probability spike.
#[must_use]
pub fn zipf_rank(r1: u64, r2: u64, n: u64) -> u64 {
    let n = n.max(1);
    let octaves = u64::from(64 - n.leading_zeros());
    let base = 1u64 << (r1 % octaves);
    let r = base - 1 + (r2 % base);
    if r < n {
        r
    } else {
        r - n
    }
}

/// A sharper-than-1/x rank in `[0, n)` for key popularity: the octave is
/// the *minimum* of two uniform octave draws (a quadratic tilt toward the
/// head), then a uniform element inside it, with the same out-of-range
/// fold as [`zipf_rank`]. Real serving key popularity concentrates far
/// more mass on the top keys than the equal-octave-mass sampler does;
/// this keeps the head heavy enough that a handful of keys dominate, the
/// way production key-value traffic does. Integer-only and bit-stable.
#[must_use]
pub fn zipf_rank_sharp(r1: u64, r2: u64, n: u64) -> u64 {
    let n = n.max(1);
    let octaves = u64::from(64 - n.leading_zeros());
    // Two near-independent octave draws from one u64: octaves <= 64, so
    // octaves^2 <= 4096 divides 2^64 closely enough that the residual bias
    // is far below anything the distribution tests can see.
    let a = r1 % octaves;
    let b = (r1 / octaves) % octaves;
    let base = 1u64 << a.min(b);
    let r = base - 1 + (r2 % base);
    if r < n {
        r
    } else {
        r - n
    }
}

/// Key-value serving traffic: zipfian keys over `tenants × regions_per_tenant`
/// keyed regions, with read/write-mix and tenant-churn knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvServingConfig {
    /// Distinct tenants; a key's tenant is `key / regions_per_tenant`.
    pub tenants: u64,
    /// Keyed regions per tenant.
    pub regions_per_tenant: u64,
    /// Blocks of address span reserved per region (one counter-coverage
    /// group downstream).
    pub blocks_per_region: u64,
    /// Distinct blocks actually hammered inside a region (zipfian). Real
    /// tenants hit a few hot lines per region; keeping this small keeps the
    /// steady-state working set realistic instead of smearing accesses
    /// across the whole coverage span.
    pub hot_blocks_per_region: u64,
    /// Events one full stream emits.
    pub events: u64,
    /// Probability, in per-mille, that an event is a write.
    pub write_permille: u32,
    /// Events per churn epoch: every epoch the hot-key identity rotates
    /// across tenant boundaries, modeling tenant churn. `0` disables churn.
    pub churn_period: u64,
    /// Stream seed.
    pub seed: u64,
}

/// A stream whose hot set jumps to a disjoint region window every phase —
/// the "program entered a new phase" case memoization must re-learn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseChangeConfig {
    /// Total keyed regions.
    pub regions: u64,
    /// Blocks of address span reserved per region.
    pub blocks_per_region: u64,
    /// Regions in the hot window of one phase.
    pub hot_regions: u64,
    /// Events per phase; each phase shifts the hot window by `hot_regions`.
    pub phase_len: u64,
    /// Events one full stream emits.
    pub events: u64,
    /// Probability, in per-mille, that an event is a write.
    pub write_permille: u32,
    /// Stream seed.
    pub seed: u64,
}

/// The worst case for self-reinforcement: a cyclic sweep over a region set
/// sized just past the memo table, so every region is touched exactly often
/// enough to evict the entries that would have served it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversarialLocalityConfig {
    /// Regions in the sweep cycle (size this above the per-shard memo
    /// table so entries age out between revisits).
    pub regions: u64,
    /// Blocks of address span reserved per region.
    pub blocks_per_region: u64,
    /// Consecutive accesses per region before the sweep moves on.
    pub burst: u64,
    /// Events one full stream emits.
    pub events: u64,
    /// Probability, in per-mille, that an event is a write.
    pub write_permille: u32,
    /// Stream seed.
    pub seed: u64,
}

/// One serving-corpus scenario: a pure-integer traffic generator that is
/// both an iterator factory ([`Scenario::events`]) and a [`TraceSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Multi-tenant key-value serving (zipfian keys, churn knob).
    KvServing(KvServingConfig),
    /// Hot set jumps to a new window every phase.
    PhaseChange(PhaseChangeConfig),
    /// Memo-defeating cyclic sweep.
    AdversarialLocality(AdversarialLocalityConfig),
}

/// Bytes per block in every scenario's address arithmetic (one cache line /
/// protected data block).
pub const BLOCK_BYTES: u64 = 64;

impl Scenario {
    /// Stable scenario name, used in fixture paths and report rows.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::KvServing(_) => "kv_serving",
            Scenario::PhaseChange(_) => "phase_change",
            Scenario::AdversarialLocality(_) => "adversarial_locality",
        }
    }

    /// Events one full stream emits.
    #[must_use]
    pub fn event_count(&self) -> u64 {
        match self {
            Scenario::KvServing(c) => c.events,
            Scenario::PhaseChange(c) => c.events,
            Scenario::AdversarialLocality(c) => c.events,
        }
    }

    /// The stream seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        match self {
            Scenario::KvServing(c) => c.seed,
            Scenario::PhaseChange(c) => c.seed,
            Scenario::AdversarialLocality(c) => c.seed,
        }
    }

    /// A fresh pass over the stream. Every call restarts from the seed, so
    /// repeated passes are identical.
    #[must_use]
    pub fn events(&self) -> ScenarioEvents {
        ScenarioEvents {
            scenario: *self,
            rng: self.seed() | 1,
            emitted: 0,
        }
    }

    /// Generates event `i` of the stream, advancing `rng` by however many
    /// draws the scenario takes per event (a fixed count per variant, so
    /// event `i` is a pure function of `(config, i)` given the rng chain).
    fn event_at(&self, i: u64, rng: &mut u64) -> TraceEvent {
        let mut next = || {
            *rng = splitmix64(*rng);
            *rng
        };
        let (block, write_permille) = match self {
            Scenario::KvServing(c) => {
                let keys = (c.tenants.max(1)) * (c.regions_per_tenant.max(1));
                let rank = zipf_rank_sharp(next(), next(), keys);
                // Churn rotates which physical key is "rank k hot", with a
                // stride that crosses tenant boundaries so hot traffic
                // migrates between tenants epoch to epoch.
                // `checked_div` doubles as the churn on/off switch:
                // `churn_period == 0` means no rotation.
                let key = match i.checked_div(c.churn_period) {
                    Some(epoch) => {
                        let stride = c.regions_per_tenant.max(1) + 1;
                        (rank + epoch.wrapping_mul(stride)) % keys
                    }
                    None => rank,
                };
                let hot = c
                    .hot_blocks_per_region
                    .max(1)
                    .min(c.blocks_per_region.max(1));
                let offset = zipf_rank(next(), next(), hot);
                (key * c.blocks_per_region.max(1) + offset, c.write_permille)
            }
            Scenario::PhaseChange(c) => {
                let regions = c.regions.max(1);
                let hot = c.hot_regions.max(1).min(regions);
                let phase = i / c.phase_len.max(1);
                let window_base = phase.wrapping_mul(hot) % regions;
                // 7/8 of traffic lands in the current hot window (zipfian
                // inside it), 1/8 is uniform background.
                let region = if next() % 8 != 0 {
                    (window_base + zipf_rank(next(), next(), hot)) % regions
                } else {
                    next() % regions
                };
                let offset = zipf_rank(next(), next(), c.blocks_per_region.max(1));
                (
                    region * c.blocks_per_region.max(1) + offset,
                    c.write_permille,
                )
            }
            Scenario::AdversarialLocality(c) => {
                let regions = c.regions.max(1);
                let burst = c.burst.max(1);
                // Round-robin sweep: each region gets `burst` consecutive
                // accesses, then is not seen again for a full cycle —
                // exactly long enough for its memo entries to be evicted.
                let region = (i / burst) % regions;
                let offset = (i % burst) % c.blocks_per_region.max(1);
                (
                    region * c.blocks_per_region.max(1) + offset,
                    c.write_permille,
                )
            }
        };
        let is_write = next() % 1_000 < u64::from(write_permille);
        TraceEvent {
            addr: block * BLOCK_BYTES,
            is_write,
            work: 0,
            dep_on_prev_load: false,
        }
    }
}

/// Iterator over one pass of a [`Scenario`] stream.
#[derive(Debug, Clone)]
pub struct ScenarioEvents {
    scenario: Scenario,
    rng: u64,
    emitted: u64,
}

impl Iterator for ScenarioEvents {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.emitted >= self.scenario.event_count() {
            return None;
        }
        let i = self.emitted;
        self.emitted += 1;
        Some(self.scenario.event_at(i, &mut self.rng))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.scenario.event_count().saturating_sub(self.emitted);
        let left = usize::try_from(left).unwrap_or(usize::MAX);
        (left, Some(left))
    }
}

impl TraceSource for Scenario {
    fn stream(&mut self, sink: &mut dyn TraceSink) {
        for ev in self.events() {
            sink.emit(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CountingSink;

    fn draws(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = splitmix64(s);
            s
        }
    }

    #[test]
    fn zipf_rank_stays_in_range() {
        let mut next = draws(7);
        for n in [1u64, 2, 3, 5, 1_000, (1 << 20) - 3, 1 << 20] {
            for _ in 0..2_000 {
                assert!(zipf_rank(next(), next(), n) < n);
                assert!(zipf_rank_sharp(next(), next(), n) < n);
            }
        }
    }

    #[test]
    fn zipf_rank_head_is_heavy() {
        let mut next = draws(1);
        let n = 1_000u64;
        let mut low = 0u64;
        for _ in 0..10_000 {
            if zipf_rank(next(), next(), n) < 8 {
                low += 1;
            }
        }
        // Eight of a thousand keys carry far more than their uniform share
        // (0.8%) of the traffic.
        assert!(low > 2_000, "zipf head too light: {low}");
    }

    #[test]
    fn zipf_rank_has_no_spike_at_n_minus_1() {
        // n = 1000 is not a power of two: the top octave (512 elements,
        // ranks 511..1022) overflows [0, n) by 23 ranks. The old clamp
        // piled all 24 overflowing outcomes onto rank 999 (~24x its fair
        // share); the fold spreads them over the head instead.
        let n = 1_000u64;
        let samples = 200_000u64;
        let mut hist = vec![0u64; n as usize];
        let mut next = draws(0xC0FFEE);
        for _ in 0..samples {
            hist[zipf_rank(next(), next(), n) as usize] += 1;
        }
        // A tail rank's natural mass: octave 9 spreads 1/10 of all samples
        // over 512 elements, ~39 hits here. Allow generous noise but stay
        // far below the ~900 hits the clamp used to put on rank 999.
        let natural = samples / 10 / 512;
        assert!(
            hist[(n - 1) as usize] < natural * 4,
            "spurious spike at n-1: {} hits vs ~{natural} natural",
            hist[(n - 1) as usize]
        );
        // Neighboring tail ranks look the same as the last one.
        let tail_mean = (hist[990..999].iter().sum::<u64>()) / 9;
        assert!(
            hist[999] <= tail_mean * 3 + 16,
            "rank 999 ({}) out of family with tail mean {tail_mean}",
            hist[999]
        );
        // Head is still heavy: the first 8 ranks carry >20% of the mass.
        let head: u64 = hist[..8].iter().sum();
        assert!(head * 5 > samples, "head too light after fold: {head}");
    }

    #[test]
    fn sharp_sampler_concentrates_more_than_flat() {
        let n = 1_000_000u64;
        let mut next = draws(0xABCD);
        let mut flat_head = 0u64;
        let mut sharp_head = 0u64;
        for _ in 0..20_000 {
            if zipf_rank(next(), next(), n) < 32 {
                flat_head += 1;
            }
            if zipf_rank_sharp(next(), next(), n) < 32 {
                sharp_head += 1;
            }
        }
        assert!(
            sharp_head > flat_head * 3 / 2,
            "sharp head {sharp_head} not heavier than flat head {flat_head}"
        );
    }

    fn kv_small() -> KvServingConfig {
        KvServingConfig {
            tenants: 64,
            regions_per_tenant: 16,
            blocks_per_region: 128,
            hot_blocks_per_region: 8,
            events: 4_096,
            write_permille: 600,
            churn_period: 0,
            seed: 0x5EED,
        }
    }

    #[test]
    fn scenario_streams_are_deterministic() {
        for scenario in [
            Scenario::KvServing(kv_small()),
            Scenario::PhaseChange(PhaseChangeConfig {
                regions: 512,
                blocks_per_region: 128,
                hot_regions: 16,
                phase_len: 512,
                events: 4_096,
                write_permille: 300,
                seed: 0x5EED,
            }),
            Scenario::AdversarialLocality(AdversarialLocalityConfig {
                regions: 384,
                blocks_per_region: 128,
                burst: 2,
                events: 4_096,
                write_permille: 300,
                seed: 0x5EED,
            }),
        ] {
            let a: Vec<TraceEvent> = scenario.events().collect();
            let b: Vec<TraceEvent> = scenario.events().collect();
            assert_eq!(a, b, "{} not deterministic", scenario.name());
            assert_eq!(a.len() as u64, scenario.event_count());
            let mut counts = CountingSink::default();
            let mut src = scenario;
            src.stream(&mut counts);
            assert_eq!(counts.reads + counts.writes, scenario.event_count());
            assert!(counts.writes > 0, "{} emitted no writes", scenario.name());
            assert!(counts.reads > 0, "{} emitted no reads", scenario.name());
        }
    }

    #[test]
    fn kv_addresses_stay_in_keyspace() {
        let cfg = kv_small();
        let span = cfg.tenants * cfg.regions_per_tenant * cfg.blocks_per_region * BLOCK_BYTES;
        for ev in Scenario::KvServing(cfg).events() {
            assert!(ev.addr < span);
            assert_eq!(ev.addr % BLOCK_BYTES, 0);
            assert_eq!(ev.work, 0);
            assert!(!ev.dep_on_prev_load);
        }
    }

    #[test]
    fn kv_churn_rotates_the_hot_set() {
        let still = Scenario::KvServing(kv_small());
        let mut churned_cfg = kv_small();
        churned_cfg.churn_period = 1_024;
        let churned = Scenario::KvServing(churned_cfg);
        let a: Vec<u64> = still.events().map(|e| e.addr).collect();
        let b: Vec<u64> = churned.events().map(|e| e.addr).collect();
        // First churn epoch is identity; later epochs shift the hot keys.
        assert_eq!(a[..1_024], b[..1_024]);
        assert_ne!(a[1_024..], b[1_024..]);
    }

    #[test]
    fn phase_change_moves_the_hot_window() {
        let cfg = PhaseChangeConfig {
            regions: 512,
            blocks_per_region: 128,
            hot_regions: 16,
            phase_len: 1_024,
            events: 2_048,
            write_permille: 0,
            seed: 9,
        };
        let events: Vec<TraceEvent> = Scenario::PhaseChange(cfg).events().collect();
        let region_of = |e: &TraceEvent| e.addr / BLOCK_BYTES / cfg.blocks_per_region;
        let in_window = |r: u64, base: u64| r >= base && r < base + cfg.hot_regions;
        let phase0_hot = events[..1_024]
            .iter()
            .filter(|e| in_window(region_of(e), 0))
            .count();
        let phase1_hot = events[1_024..]
            .iter()
            .filter(|e| in_window(region_of(e), cfg.hot_regions))
            .count();
        assert!(phase0_hot > 700, "phase 0 window cold: {phase0_hot}");
        assert!(phase1_hot > 700, "phase 1 window cold: {phase1_hot}");
        let phase1_stale = events[1_024..]
            .iter()
            .filter(|e| in_window(region_of(e), 0))
            .count();
        assert!(
            phase1_stale < 100,
            "phase 1 still hitting phase 0's window: {phase1_stale}"
        );
    }

    #[test]
    fn adversarial_sweep_cycles_every_region() {
        let cfg = AdversarialLocalityConfig {
            regions: 96,
            blocks_per_region: 128,
            burst: 2,
            events: 96 * 2,
            write_permille: 500,
            seed: 3,
        };
        let mut seen = vec![0u32; cfg.regions as usize];
        for ev in Scenario::AdversarialLocality(cfg).events() {
            seen[(ev.addr / BLOCK_BYTES / cfg.blocks_per_region) as usize] += 1;
        }
        assert!(
            seen.iter().all(|&n| n == cfg.burst as u32),
            "sweep not uniform: {seen:?}"
        );
    }
}
