//! Synthetic graph generation (R-MAT) and CSR storage.
//!
//! The paper evaluates IBM GraphBig on an LDBC "Facebook-like" dataset.
//! R-MAT with the Graph500 parameters produces the same skewed-degree,
//! community-structured topology class, which is what drives the irregular
//! access patterns the paper studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed graph in compressed-sparse-row form.
///
/// Vertex ids are `u32`; a graph with `n` vertices stores neighbor lists
/// concatenated in [`Csr::col`], delimited by [`Csr::row_ptr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `row_ptr[v]..row_ptr[v+1]` indexes `col` with `v`'s out-neighbors.
    pub row_ptr: Vec<u64>,
    /// Concatenated adjacency lists.
    pub col: Vec<u32>,
}

impl Csr {
    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.col.len()
    }

    /// The out-neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.row_ptr[v as usize] as usize;
        let hi = self.row_ptr[v as usize + 1] as usize;
        &self.col[lo..hi]
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: u32) -> usize {
        (self.row_ptr[v as usize + 1] - self.row_ptr[v as usize]) as usize
    }

    /// Builds a CSR from an edge list over `n` vertices, sorting and
    /// deduplicating.
    pub fn from_edges(n: usize, mut edges: Vec<(u32, u32)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut row_ptr = vec![0u64; n + 1];
        for &(s, _) in &edges {
            row_ptr[s as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col = edges.into_iter().map(|(_, d)| d).collect();
        Csr { row_ptr, col }
    }
}

/// R-MAT generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Average directed edges per vertex.
    pub edge_factor: u32,
    /// Quadrant probabilities (Graph500 uses 0.57 / 0.19 / 0.19 / 0.05).
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Also insert each edge's reverse, making the graph symmetric.
    pub undirected: bool,
}

impl RmatParams {
    /// Graph500-flavored defaults at the given scale.
    pub fn graph500(scale: u32, edge_factor: u32, seed: u64) -> Self {
        RmatParams {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
            undirected: true,
        }
    }
}

/// Generates an R-MAT graph.
///
/// # Examples
///
/// ```
/// use rmcc_workloads::graph::{rmat, RmatParams};
///
/// let g = rmat(RmatParams::graph500(10, 8, 1));
/// assert_eq!(g.n_vertices(), 1024);
/// assert!(g.n_edges() > 1024);
/// ```
pub fn rmat(p: RmatParams) -> Csr {
    let n = 1usize << p.scale;
    let target = n * p.edge_factor as usize;
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut edges = Vec::with_capacity(if p.undirected { target * 2 } else { target });
    for _ in 0..target {
        let (mut src, mut dst) = (0u32, 0u32);
        for level in (0..p.scale).rev() {
            let r: f64 = rng.gen();
            let (sbit, dbit) = if r < p.a {
                (0, 0)
            } else if r < p.a + p.b {
                (0, 1)
            } else if r < p.a + p.b + p.c {
                (1, 0)
            } else {
                (1, 1)
            };
            src |= sbit << level;
            dst |= dbit << level;
        }
        if src != dst {
            edges.push((src, dst));
            if p.undirected {
                edges.push((dst, src));
            }
        }
    }
    Csr::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_edges_basics() {
        let g = Csr::from_edges(4, vec![(0, 1), (0, 2), (2, 3), (0, 1)]);
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 3); // duplicate (0,1) removed
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(RmatParams::graph500(8, 4, 7));
        let b = rmat(RmatParams::graph500(8, 4, 7));
        assert_eq!(a, b);
        let c = rmat(RmatParams::graph500(8, 4, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let g = rmat(RmatParams::graph500(12, 8, 3));
        let max_deg = (0..g.n_vertices() as u32)
            .map(|v| g.degree(v))
            .max()
            .unwrap();
        let avg = g.n_edges() as f64 / g.n_vertices() as f64;
        // Power-law graphs have hubs far above the mean degree.
        assert!(max_deg as f64 > 10.0 * avg, "max {max_deg} avg {avg}");
    }

    #[test]
    fn undirected_graphs_are_symmetric() {
        let g = rmat(RmatParams::graph500(8, 4, 9));
        for v in 0..g.n_vertices() as u32 {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u).contains(&v), "edge ({v},{u}) has no reverse");
            }
        }
    }

    #[test]
    fn no_self_loops() {
        let g = rmat(RmatParams::graph500(8, 4, 11));
        for v in 0..g.n_vertices() as u32 {
            assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    fn row_ptr_is_monotone_and_covers_col() {
        let g = rmat(RmatParams::graph500(9, 4, 2));
        assert!(g.row_ptr.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*g.row_ptr.last().unwrap() as usize, g.col.len());
    }
}
