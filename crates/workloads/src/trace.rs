//! Memory-trace primitives: the event format workload kernels emit and the
//! sinks that consume it.
//!
//! The reproduction replaces the paper's Pin instrumentation with *in-crate*
//! instrumentation: workload kernels execute for real against [`crate::arena::TVec`]
//! containers, which report every load and store here. Events carry virtual
//! byte addresses; physical placement is applied downstream by the
//! simulator's page mapper.

/// One memory access performed by a workload kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Virtual byte address touched.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub is_write: bool,
    /// Non-memory instructions executed since the previous event — feeds the
    /// core model's retire-bandwidth accounting.
    pub work: u16,
    /// `true` when this access's address was computed from the value of the
    /// kernel's most recent load (pointer chasing / data-dependent indexing).
    /// Dependent accesses cannot overlap with the load that feeds them,
    /// which is what makes irregular workloads latency-sensitive.
    pub dep_on_prev_load: bool,
}

/// Anything that can consume a trace as it is generated.
///
/// Kernels stream events instead of materializing traces, so multi-billion
/// access lifetimes (the paper's "whole lifetime" Pin runs) fit in memory.
pub trait TraceSink {
    /// Consumes one event.
    fn emit(&mut self, event: TraceEvent);
}

impl TraceSink for Vec<TraceEvent> {
    fn emit(&mut self, event: TraceEvent) {
        self.push(event);
    }
}

/// Anything that can produce a trace on demand, one event at a time.
///
/// This is the producer half of the streaming pipeline: a source drives a
/// [`TraceSink`] without ever materializing the event stream, so a
/// whole-lifetime run's footprint is the workload's own working set, not the
/// (much larger) trace. Live kernels ([`crate::workload::WorkloadSource`])
/// regenerate the stream on every call; buffered adapters ([`VecSink`],
/// slices) replay a recorded one.
pub trait TraceSource {
    /// Streams every event of one complete run into `sink`.
    fn stream(&mut self, sink: &mut dyn TraceSink);
}

impl TraceSource for Vec<TraceEvent> {
    fn stream(&mut self, sink: &mut dyn TraceSink) {
        for &ev in self.iter() {
            sink.emit(ev);
        }
    }
}

impl TraceSource for &[TraceEvent] {
    fn stream(&mut self, sink: &mut dyn TraceSink) {
        for &ev in self.iter() {
            sink.emit(ev);
        }
    }
}

/// A buffer that is both ends of the pipeline: collect a trace as a
/// [`TraceSink`], then replay it as a [`TraceSource`].
///
/// For consumers that genuinely need random access to a recorded trace —
/// unit tests, and the lockstep multicore runner, which interleaves
/// per-core replay by simulated time.
///
/// # Examples
///
/// ```
/// use rmcc_workloads::trace::{CountingSink, TraceSource, VecSink};
/// use rmcc_workloads::workload::{Scale, Workload};
///
/// let mut buf = VecSink::default();
/// Workload::Canneal.run(Scale::Tiny, &mut buf).expect("no graph needed");
/// let mut counts = CountingSink::default();
/// buf.stream(&mut counts);
/// assert_eq!(buf.events.len() as u64, counts.reads + counts.writes);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecSink {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

impl TraceSource for VecSink {
    fn stream(&mut self, sink: &mut dyn TraceSink) {
        for &ev in &self.events {
            sink.emit(ev);
        }
    }
}

/// A sink that only counts, for quick workload characterization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Loads seen.
    pub reads: u64,
    /// Stores seen.
    pub writes: u64,
    /// Sum of `work` fields.
    pub work: u64,
    /// Events flagged as dependent.
    pub dependent: u64,
}

impl TraceSink for CountingSink {
    fn emit(&mut self, event: TraceEvent) {
        if event.is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.work += event.work as u64;
        if event.dep_on_prev_load {
            self.dependent += 1;
        }
    }
}

/// A sink adapter that forwards to a closure.
#[derive(Debug)]
pub struct FnSink<F: FnMut(TraceEvent)>(pub F);

impl<F: FnMut(TraceEvent)> TraceSink for FnSink<F> {
    fn emit(&mut self, event: TraceEvent) {
        (self.0)(event);
    }
}

/// The recording interface handed to kernels.
///
/// Kernels call [`Recorder::work`] for compute and the `TVec` accessors for
/// memory; the recorder batches the pending work into the next event.
///
/// # Examples
///
/// ```
/// use rmcc_workloads::trace::{CountingSink, Recorder};
///
/// let mut sink = CountingSink::default();
/// let mut rec = Recorder::new(&mut sink);
/// rec.work(3);
/// rec.read(0x1000, false);
/// rec.write(0x2000);
/// drop(rec);
/// assert_eq!(sink.reads, 1);
/// assert_eq!(sink.writes, 1);
/// assert_eq!(sink.work, 3);
/// ```
pub struct Recorder<'a> {
    sink: &'a mut dyn TraceSink,
    pending_work: u32,
    events: u64,
}

impl std::fmt::Debug for Recorder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("pending_work", &self.pending_work)
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl<'a> Recorder<'a> {
    /// Wraps a sink.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        Recorder {
            sink,
            pending_work: 0,
            events: 0,
        }
    }

    /// Registers `n` non-memory instructions of compute.
    pub fn work(&mut self, n: u32) {
        self.pending_work = self.pending_work.saturating_add(n);
    }

    /// Records a load of `addr`; `dependent` marks pointer-chased accesses.
    pub fn read(&mut self, addr: u64, dependent: bool) {
        let work = self.take_work();
        self.events += 1;
        self.sink.emit(TraceEvent {
            addr,
            is_write: false,
            work,
            dep_on_prev_load: dependent,
        });
    }

    /// Records a store to `addr`.
    pub fn write(&mut self, addr: u64) {
        let work = self.take_work();
        self.events += 1;
        self.sink.emit(TraceEvent {
            addr,
            is_write: true,
            work,
            dep_on_prev_load: false,
        });
    }

    /// Events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn take_work(&mut self) -> u16 {
        let w = self.pending_work.min(u16::MAX as u32) as u16;
        self.pending_work = 0;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects() {
        let mut v: Vec<TraceEvent> = Vec::new();
        {
            let mut rec = Recorder::new(&mut v);
            rec.read(64, false);
            rec.read(128, true);
            rec.write(192);
        }
        assert_eq!(v.len(), 3);
        assert!(!v[0].is_write && !v[0].dep_on_prev_load);
        assert!(v[1].dep_on_prev_load);
        assert!(v[2].is_write);
    }

    #[test]
    fn work_attaches_to_next_event_only() {
        let mut v: Vec<TraceEvent> = Vec::new();
        {
            let mut rec = Recorder::new(&mut v);
            rec.work(5);
            rec.work(2);
            rec.read(0, false);
            rec.read(64, false);
        }
        assert_eq!(v[0].work, 7);
        assert_eq!(v[1].work, 0);
    }

    #[test]
    fn work_saturates_at_u16_max() {
        let mut v: Vec<TraceEvent> = Vec::new();
        {
            let mut rec = Recorder::new(&mut v);
            rec.work(100_000);
            rec.read(0, false);
        }
        assert_eq!(v[0].work, u16::MAX);
    }

    #[test]
    fn counting_sink_tallies() {
        let mut c = CountingSink::default();
        {
            let mut rec = Recorder::new(&mut c);
            rec.work(4);
            rec.read(0, true);
            rec.write(64);
            assert_eq!(rec.events(), 2);
        }
        assert_eq!(c.reads, 1);
        assert_eq!(c.writes, 1);
        assert_eq!(c.dependent, 1);
        assert_eq!(c.work, 4);
    }

    #[test]
    fn vec_sink_roundtrips_through_stream() {
        let mut buf = VecSink::default();
        {
            let mut rec = Recorder::new(&mut buf);
            rec.work(3);
            rec.read(64, false);
            rec.write(128);
        }
        let mut replay: Vec<TraceEvent> = Vec::new();
        buf.stream(&mut replay);
        assert_eq!(replay, buf.events);
        // Slices replay too, without consuming the buffer.
        let mut counts = CountingSink::default();
        buf.events.as_slice().stream(&mut counts);
        assert_eq!(counts.reads, 1);
        assert_eq!(counts.writes, 1);
        assert_eq!(counts.work, 3);
    }

    #[test]
    fn fn_sink_forwards() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink(|e: TraceEvent| seen.push(e.addr));
            let mut rec = Recorder::new(&mut sink);
            rec.read(10, false);
            rec.write(20);
        }
        assert_eq!(seen, vec![10, 20]);
    }
}
