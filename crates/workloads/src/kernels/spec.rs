//! SPEC/PARSEC-like kernels: `canneal`, `omnetpp`, and `mcf` stand-ins.
//!
//! The paper evaluates these three alongside GraphBig because they span the
//! locality spectrum (Figure 3): canneal's random netlist swaps have the
//! *highest* counter-miss rate, omnetpp's event-driven simulation sits in
//! the middle, and mcf's long sequential arc scans have the *lowest*. Each
//! kernel here implements the core loop of the original program — simulated
//! annealing, a future-event-set simulator, and network-simplex-style arc
//! pricing — at a configurable footprint.

use crate::arena::{Arena, TVec};
use crate::trace::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the canneal-like simulated-annealing kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CannealParams {
    /// Number of netlist elements (each 8 B).
    pub elements: usize,
    /// Number of swap attempts.
    pub swaps: usize,
    /// PRNG seed.
    pub seed: u64,
}

/// Simulated annealing over a netlist: each step picks two random elements,
/// reads a handful of their neighbors to evaluate the wire-length delta, and
/// swaps on improvement. Uniform random indexing over a large array is the
/// worst case for counter-block locality.
///
/// Returns the number of accepted swaps.
pub fn canneal(p: CannealParams, rec: &mut Recorder<'_>) -> u64 {
    let mut arena = Arena::new();
    // Element i stores its current "location"; neighbors are derived
    // deterministically from the element id like a hashed netlist.
    let init: Vec<u64> = (0..p.elements as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9))
        .collect();
    let mut locs = arena.vec_from(init);
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut accepted = 0u64;
    let n = p.elements;
    for step in 0..p.swaps {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let la = *locs.get(a, rec);
        let lb = *locs.get(b, rec);
        rec.work(4);
        // Evaluate two pseudo-neighbors per endpoint (dependent reads: the
        // netlist pointer comes from the element just loaded).
        let mut cost_delta = 0i64;
        for &(idx, loc) in &[(a, la), (b, lb)] {
            for k in 0..2u64 {
                let nb = ((loc >> (8 * k)).wrapping_add(idx as u64) as usize) % n;
                let ln = *locs.get_dep(nb, rec);
                cost_delta += (ln as i64 - loc as i64) % 1024;
                rec.work(6);
            }
        }
        // Anneal: accept a fraction of improving moves plus a decaying
        // fraction of others (mid-annealing acceptance rates sit around
        // 20-30%); most evaluations are read-only.
        let accept = (cost_delta < 0 && step % 2 == 0) || (step % 13 == 0 && step < p.swaps / 2);
        if accept {
            locs.set(a, lb, rec);
            locs.set(b, la, rec);
            accepted += 1;
        }
    }
    accepted
}

/// Parameters for the omnetpp-like discrete-event simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmnetppParams {
    /// Number of simulated modules (each 8 B of hot state).
    pub modules: usize,
    /// Events to process.
    pub events: usize,
    /// PRNG seed.
    pub seed: u64,
}

/// A future-event-set simulator: a binary heap of (time, module) events in
/// instrumented memory, each event touching one module's state and
/// scheduling a successor. Heap maintenance gives log-depth, moderately
/// local traffic; module state gives scattered accesses.
///
/// Returns the number of processed events.
pub fn omnetpp(p: OmnetppParams, rec: &mut Recorder<'_>) -> u64 {
    let mut arena = Arena::new();
    let mut modules = arena.vec_of(p.modules, 0u64);
    // Heap entries pack (time << 24 | module) so one 8 B slot is one event.
    let mut heap = arena.vec_of(p.events + 64, 0u64);
    let mut heap_len = 0usize;
    let mut rng = StdRng::seed_from_u64(p.seed);

    let pack = |time: u64, module: usize| (time << 24) | module as u64;
    let unpack = |e: u64| ((e >> 24), (e & 0xff_ffff) as usize);

    // Seed a few initial events.
    let push = |heap: &mut TVec<u64>, len: &mut usize, entry: u64, rec: &mut Recorder<'_>| {
        let mut i = *len;
        heap.set(i, entry, rec);
        *len += 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            let pe = *heap.get(parent, rec);
            rec.work(2);
            if pe <= entry {
                break;
            }
            heap.set(i, pe, rec);
            heap.set(parent, entry, rec);
            i = parent;
        }
    };
    for m in 0..8.min(p.modules) {
        push(&mut heap, &mut heap_len, pack(m as u64, m), rec);
    }

    let mut processed = 0u64;
    while processed < p.events as u64 && heap_len > 0 {
        // Pop-min.
        let top = *heap.get(0, rec);
        let (time, module) = unpack(top);
        let last = *heap.get(heap_len - 1, rec);
        heap_len -= 1;
        if heap_len > 0 {
            heap.set(0, last, rec);
            let mut i = 0usize;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                if l >= heap_len {
                    break;
                }
                let le = *heap.get(l, rec);
                let child = if r < heap_len {
                    let re = *heap.get(r, rec);
                    if re < le {
                        r
                    } else {
                        l
                    }
                } else {
                    l
                };
                let ce = *heap.get(child, rec);
                let cur = *heap.get(i, rec);
                rec.work(3);
                if ce >= cur {
                    break;
                }
                heap.set(i, ce, rec);
                heap.set(child, cur, rec);
                i = child;
            }
        }
        // Process: touch the module's state (dependent on the event load),
        // then schedule a successor at a random future module.
        let state = *modules.get_dep(module, rec);
        rec.work(8);
        modules.set(module, state.wrapping_add(time) | 1, rec);
        let next_module = (state as usize ^ rng.gen_range(0..p.modules)) % p.modules;
        let delay = 1 + (state % 16);
        push(
            &mut heap,
            &mut heap_len,
            pack(time + delay, next_module),
            rec,
        );
        processed += 1;
    }
    processed
}

/// Parameters for the mcf-like network-simplex pricing kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McfParams {
    /// Number of arcs (each 16 B: packed tail/head/cost).
    pub arcs: usize,
    /// Number of nodes (potentials array; sized to mostly fit in the LLC,
    /// which is what gives mcf its low counter-miss rate).
    pub nodes: usize,
    /// Full pricing passes over the arc array.
    pub passes: usize,
    /// PRNG seed.
    pub seed: u64,
}

/// Network-simplex-style arc pricing: long sequential scans over a large
/// arc array, with node-potential lookups that mostly hit in the LLC.
/// Sequential scans are the best case for counter blocks — one counter miss
/// covers the next 127 data blocks.
///
/// Returns the number of negative-reduced-cost arcs found.
pub fn mcf(p: McfParams, rec: &mut Recorder<'_>) -> u64 {
    let mut arena = Arena::new();
    let mut rng = StdRng::seed_from_u64(p.seed);
    let arcs_init: Vec<u128> = (0..p.arcs)
        .map(|_| {
            let tail = rng.gen_range(0..p.nodes) as u128;
            let head = rng.gen_range(0..p.nodes) as u128;
            let cost = rng.gen_range(0..1_000u128);
            (cost << 64) | (head << 32) | tail
        })
        .collect();
    let arcs = arena.vec_from(arcs_init);
    let mut potentials = arena.vec_of(p.nodes, 0i64);
    let mut negative = 0u64;
    for pass in 0..p.passes {
        for i in 0..p.arcs {
            let packed = *arcs.get(i, rec); // streaming scan
            let tail = (packed & 0xffff_ffff) as usize;
            let head = ((packed >> 32) & 0xffff_ffff) as usize;
            let cost = (packed >> 64) as i64 - 500;
            let pt = *potentials.get_dep(tail, rec);
            let ph = *potentials.get_dep(head, rec);
            rec.work(4);
            let reduced = cost - pt + ph;
            if reduced < 0 {
                negative += 1;
                // Dual update on the tail node.
                potentials.set(tail, pt + reduced / 2 - 1, rec);
            }
        }
        // Periodic dual relaxation sweep (sequential over nodes).
        if pass + 1 < p.passes {
            for v in 0..p.nodes {
                let pv = *potentials.get(v, rec);
                rec.work(1);
                if pv > 0 {
                    potentials.set(v, pv - 1, rec);
                }
            }
        }
    }
    negative
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn record<R>(f: impl FnOnce(&mut Recorder<'_>) -> R) -> (R, Vec<TraceEvent>) {
        let mut events: Vec<TraceEvent> = Vec::new();
        let out = {
            let mut rec = Recorder::new(&mut events);
            f(&mut rec)
        };
        (out, events)
    }

    #[test]
    fn canneal_is_deterministic_and_swaps() {
        let p = CannealParams {
            elements: 4096,
            swaps: 2000,
            seed: 5,
        };
        let (a1, e1) = record(|rec| canneal(p, rec));
        let (a2, e2) = record(|rec| canneal(p, rec));
        assert_eq!(a1, a2);
        assert_eq!(e1, e2);
        assert!(a1 > 0, "no swaps accepted");
    }

    #[test]
    fn canneal_accesses_are_scattered() {
        let p = CannealParams {
            elements: 1 << 16,
            swaps: 3000,
            seed: 5,
        };
        let (_, events) = record(|rec| canneal(p, rec));
        // Count distinct 64 B blocks touched: random swaps should cover a
        // large fraction of the footprint.
        let blocks: std::collections::HashSet<u64> = events.iter().map(|e| e.addr >> 6).collect();
        assert!(blocks.len() > 2000, "only {} blocks", blocks.len());
    }

    #[test]
    fn omnetpp_processes_requested_events() {
        let p = OmnetppParams {
            modules: 1 << 12,
            events: 5000,
            seed: 1,
        };
        let (n, events) = record(|rec| omnetpp(p, rec));
        assert_eq!(n, 5000);
        assert!(events.iter().any(|e| e.is_write));
        assert!(events.iter().any(|e| e.dep_on_prev_load));
    }

    #[test]
    fn omnetpp_heap_time_is_monotonic() {
        // Times of processed events must never go backwards; we detect this
        // by checking the simulation completes (a broken heap would stall or
        // panic in practice) and module states advance.
        let p = OmnetppParams {
            modules: 256,
            events: 2000,
            seed: 3,
        };
        let (n, _) = record(|rec| omnetpp(p, rec));
        assert_eq!(n, 2000);
    }

    #[test]
    fn mcf_scans_are_mostly_sequential() {
        let p = McfParams {
            arcs: 1 << 14,
            nodes: 1 << 10,
            passes: 2,
            seed: 2,
        };
        let (neg, events) = record(|rec| mcf(p, rec));
        assert!(neg > 0);
        // Measure sequentiality of the arc-array scan: the arcs are the
        // arena's first region, so their addresses sit below the potentials.
        let arcs_end = crate::arena::REGION_ALIGN + (p.arcs as u64) * 16;
        let reads: Vec<u64> = events
            .iter()
            .filter(|e| !e.is_write && e.addr < arcs_end)
            .map(|e| e.addr >> 6)
            .collect();
        let seq = reads
            .windows(2)
            .filter(|w| w[1] == w[0] || w[1] == w[0] + 1)
            .count() as f64
            / (reads.len() - 1) as f64;
        assert!(seq > 0.5, "sequential fraction {seq}");
    }

    #[test]
    fn mcf_is_deterministic() {
        let p = McfParams {
            arcs: 4096,
            nodes: 512,
            passes: 1,
            seed: 9,
        };
        let (n1, e1) = record(|rec| mcf(p, rec));
        let (n2, e2) = record(|rec| mcf(p, rec));
        assert_eq!(n1, n2);
        assert_eq!(e1.len(), e2.len());
    }
}
