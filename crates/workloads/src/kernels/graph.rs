//! GraphBig-style graph-analytics kernels, executed for real over
//! instrumented containers.
//!
//! Eight kernels mirror the paper's GraphBig selection (Figure 3):
//! `pageRank`, `graphColoring`, `connectedComp`, `degreeCentr`, `DFS`,
//! `BFS`, `triangleCount`, `shortestPath`. Each runs its actual algorithm
//! on an R-MAT graph, so the emitted trace has the genuine mix of streaming
//! CSR scans and data-dependent irregular accesses that drives counter-cache
//! behaviour.

use crate::arena::{Arena, TVec};
use crate::graph::Csr;
use crate::trace::Recorder;

/// An instrumented CSR: topology reads are traced like any other memory.
#[derive(Debug)]
pub struct TGraph {
    row_ptr: TVec<u64>,
    col: TVec<u32>,
    n: usize,
}

impl TGraph {
    /// Copies `csr` into arena-backed storage.
    pub fn new(arena: &mut Arena, csr: &Csr) -> Self {
        TGraph {
            n: csr.n_vertices(),
            row_ptr: arena.vec_from(csr.row_ptr.clone()),
            col: arena.vec_from(csr.col.clone()),
        }
    }

    /// Vertex count.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Reads the adjacency extent of `v` (two sequential `row_ptr` loads).
    pub fn extent(&self, v: u32, rec: &mut Recorder<'_>) -> (u64, u64) {
        let lo = *self.row_ptr.get(v as usize, rec);
        let hi = *self.row_ptr.get(v as usize + 1, rec);
        (lo, hi)
    }

    /// Reads one edge target (a streaming `col` load).
    pub fn neighbor(&self, edge: u64, rec: &mut Recorder<'_>) -> u32 {
        *self.col.get(edge as usize, rec)
    }
}

/// PageRank with the standard 0.85 damping factor.
///
/// Per edge: one streaming `col` load plus one data-dependent load of the
/// source rank — the classic irregular-gather kernel.
pub fn page_rank(csr: &Csr, iters: usize, rec: &mut Recorder<'_>) -> Vec<f64> {
    let mut arena = Arena::new();
    let g = TGraph::new(&mut arena, csr);
    let n = g.n_vertices();
    let mut ranks = arena.vec_of(n, 1.0f64 / n as f64);
    let mut next = arena.vec_of(n, 0.0f64);
    for _ in 0..iters {
        for v in 0..n as u32 {
            let (lo, hi) = g.extent(v, rec);
            let mut sum = 0.0f64;
            for e in lo..hi {
                let u = g.neighbor(e, rec);
                let deg = (csr.degree(u)).max(1) as f64;
                let r = *ranks.get_dep(u as usize, rec);
                sum += r / deg;
                rec.work(3);
            }
            rec.work(4);
            next.set(v as usize, 0.15 / n as f64 + 0.85 * sum, rec);
        }
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks.raw().to_vec()
}

/// Greedy graph coloring: each vertex takes the smallest color unused by its
/// already-colored neighbors.
pub fn graph_coloring(csr: &Csr, rec: &mut Recorder<'_>) -> Vec<u64> {
    const UNCOLORED: u64 = u64::MAX;
    let mut arena = Arena::new();
    let g = TGraph::new(&mut arena, csr);
    let n = g.n_vertices();
    let mut colors = arena.vec_of(n, UNCOLORED);
    let mut forbidden: Vec<u64> = vec![0; 4]; // register-resident bitset
    for v in 0..n as u32 {
        let (lo, hi) = g.extent(v, rec);
        forbidden.iter_mut().for_each(|w| *w = 0);
        for e in lo..hi {
            let u = g.neighbor(e, rec);
            let cu = *colors.get_dep(u as usize, rec);
            rec.work(2);
            if cu != UNCOLORED && (cu as usize) < forbidden.len() * 64 {
                forbidden[cu as usize / 64] |= 1 << (cu % 64);
            }
        }
        let mut color = 0u32;
        while color < 255 && (forbidden[(color / 64) as usize] >> (color % 64)) & 1 == 1 {
            color += 1;
            rec.work(1);
        }
        colors.set(v as usize, color as u64, rec);
    }
    colors.raw().to_vec()
}

/// Connected components by label propagation until a fixed point (or the
/// iteration cap, whichever comes first).
pub fn connected_components(csr: &Csr, max_iters: usize, rec: &mut Recorder<'_>) -> Vec<u64> {
    let mut arena = Arena::new();
    let g = TGraph::new(&mut arena, csr);
    let n = g.n_vertices();
    let mut comp = arena.vec_from((0..n as u64).collect::<Vec<_>>());
    for _ in 0..max_iters {
        let mut changed = false;
        for v in 0..n as u32 {
            let (lo, hi) = g.extent(v, rec);
            let mut best = *comp.get(v as usize, rec);
            for e in lo..hi {
                let u = g.neighbor(e, rec);
                let cu = *comp.get_dep(u as usize, rec);
                rec.work(2);
                if cu < best {
                    best = cu;
                    changed = true;
                }
            }
            if best < comp.raw()[v as usize] {
                comp.set(v as usize, best, rec);
            }
        }
        if !changed {
            break;
        }
    }
    comp.raw().to_vec()
}

/// Degree centrality over an edge scan: every edge increments both
/// endpoints' counters — an irregular scatter of read-modify-writes.
pub fn degree_centrality(csr: &Csr, rec: &mut Recorder<'_>) -> Vec<u64> {
    let mut arena = Arena::new();
    let g = TGraph::new(&mut arena, csr);
    let n = g.n_vertices();
    let mut centr = arena.vec_of(n, 0u64);
    for v in 0..n as u32 {
        let (lo, hi) = g.extent(v, rec);
        for e in lo..hi {
            let u = g.neighbor(e, rec);
            rec.work(1);
            centr.update(u as usize, |c| c + 1, rec);
        }
    }
    centr.raw().to_vec()
}

/// Iterative depth-first search over all components; returns the visit
/// order's length (== vertex count).
pub fn dfs(csr: &Csr, rec: &mut Recorder<'_>) -> usize {
    let mut arena = Arena::new();
    let g = TGraph::new(&mut arena, csr);
    let n = g.n_vertices();
    let mut visited = arena.vec_of(n, 0u64);
    let mut stack: Vec<u32> = Vec::new(); // core-resident
    let mut visits = 0usize;
    for root in 0..n as u32 {
        if visited.raw()[root as usize] != 0 {
            continue;
        }
        stack.push(root);
        while let Some(v) = stack.pop() {
            rec.work(2);
            if *visited.get_dep(v as usize, rec) != 0 {
                continue;
            }
            visited.set(v as usize, 1, rec);
            visits += 1;
            let (lo, hi) = g.extent(v, rec);
            for e in lo..hi {
                let u = g.neighbor(e, rec);
                rec.work(1);
                if visited.raw()[u as usize] == 0 {
                    stack.push(u);
                }
            }
        }
    }
    visits
}

/// Breadth-first search over all components; returns total visited vertices.
pub fn bfs(csr: &Csr, rec: &mut Recorder<'_>) -> usize {
    use std::collections::VecDeque;
    let mut arena = Arena::new();
    let g = TGraph::new(&mut arena, csr);
    let n = g.n_vertices();
    let mut visited = arena.vec_of(n, 0u64);
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut visits = 0usize;
    for root in 0..n as u32 {
        if visited.raw()[root as usize] != 0 {
            continue;
        }
        visited.set(root as usize, 1, rec);
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            visits += 1;
            let (lo, hi) = g.extent(v, rec);
            for e in lo..hi {
                let u = g.neighbor(e, rec);
                rec.work(2);
                if *visited.get_dep(u as usize, rec) == 0 {
                    visited.set(u as usize, 1, rec);
                    queue.push_back(u);
                }
            }
        }
    }
    visits
}

/// Triangle counting by sorted-adjacency intersection. `max_edges` caps the
/// number of edge pivots so power-law hubs don't blow up the runtime.
pub fn triangle_count(csr: &Csr, max_edges: usize, rec: &mut Recorder<'_>) -> u64 {
    let mut arena = Arena::new();
    let g = TGraph::new(&mut arena, csr);
    let n = g.n_vertices();
    let mut counts = arena.vec_of(n, 0u64);
    let mut triangles = 0u64;
    let mut pivots = 0usize;
    'outer: for v in 0..n as u32 {
        let (vlo, vhi) = g.extent(v, rec);
        let mut found_here = 0u64;
        for e in vlo..vhi {
            let u = g.neighbor(e, rec);
            if u <= v {
                continue;
            }
            pivots += 1;
            if pivots > max_edges {
                break 'outer;
            }
            // Merge-intersect N(v) and N(u): two streaming scans.
            let (ulo, uhi) = g.extent(u, rec);
            let (mut i, mut j) = (vlo, ulo);
            while i < vhi && j < uhi {
                let a = g.neighbor(i, rec);
                let b = g.neighbor(j, rec);
                rec.work(2);
                use std::cmp::Ordering;
                match a.cmp(&b) {
                    Ordering::Equal => {
                        if a > u {
                            triangles += 1;
                            found_here += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                    Ordering::Less => i += 1,
                    Ordering::Greater => j += 1,
                }
            }
        }
        counts.set(v as usize, found_here, rec);
    }
    triangles
}

/// Single-source shortest paths by `rounds` Bellman-Ford passes with
/// synthetic per-edge weights.
pub fn shortest_path(csr: &Csr, source: u32, rounds: usize, rec: &mut Recorder<'_>) -> Vec<u64> {
    const INF: u64 = u64::MAX / 2;
    let mut arena = Arena::new();
    let g = TGraph::new(&mut arena, csr);
    let n = g.n_vertices();
    // Deterministic weights derived from the edge index.
    let weights: Vec<u64> = (0..csr.n_edges())
        .map(|e| 1 + (e as u64).wrapping_mul(2_654_435_761) % 64)
        .collect();
    let weights = arena.vec_from(weights);
    let mut dist = arena.vec_of(n, INF);
    dist.set(source as usize, 0, rec);
    for _ in 0..rounds {
        let mut changed = false;
        for v in 0..n as u32 {
            let dv = *dist.get(v as usize, rec);
            if dv >= INF {
                continue;
            }
            let (lo, hi) = g.extent(v, rec);
            for e in lo..hi {
                let u = g.neighbor(e, rec);
                let w = *weights.get(e as usize, rec);
                let du = *dist.get_dep(u as usize, rec);
                rec.work(3);
                if dv + w < du {
                    dist.set(u as usize, dv + w, rec);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist.raw().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{rmat, RmatParams};
    use crate::trace::CountingSink;

    fn small_graph() -> Csr {
        rmat(RmatParams::graph500(8, 4, 42))
    }

    fn with_recorder<R>(f: impl FnOnce(&mut Recorder<'_>) -> R) -> (R, CountingSink) {
        let mut sink = CountingSink::default();
        let out = {
            let mut rec = Recorder::new(&mut sink);
            f(&mut rec)
        };
        (out, sink)
    }

    #[test]
    fn pagerank_sums_to_one_and_traces() {
        let g = small_graph();
        let (ranks, sink) = with_recorder(|rec| page_rank(&g, 2, rec));
        let total: f64 = ranks.iter().sum();
        // Dangling-vertex leakage makes the sum slightly below 1.
        assert!(total > 0.3 && total <= 1.01, "sum = {total}");
        assert!(sink.reads > g.n_edges() as u64, "per-edge gathers missing");
        assert!(sink.dependent > 0, "rank gathers must be dependent loads");
    }

    #[test]
    fn coloring_is_proper() {
        let g = small_graph();
        let (colors, _) = with_recorder(|rec| graph_coloring(&g, rec));
        for v in 0..g.n_vertices() as u32 {
            for &u in g.neighbors(v) {
                // Greedy sequential coloring: earlier-processed neighbors
                // must differ (later ones saw v's color too, so all differ).
                assert_ne!(colors[v as usize], colors[u as usize], "edge ({v},{u})");
            }
        }
    }

    #[test]
    fn components_agree_with_reference_union_find() {
        let g = small_graph();
        let (comp, _) = with_recorder(|rec| connected_components(&g, 64, rec));
        // Reference: BFS labeling.
        let n = g.n_vertices();
        let mut reference = vec![u32::MAX; n];
        for root in 0..n as u32 {
            if reference[root as usize] != u32::MAX {
                continue;
            }
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                if reference[v as usize] != u32::MAX {
                    continue;
                }
                reference[v as usize] = root;
                stack.extend(g.neighbors(v));
            }
        }
        for v in 0..n {
            for u in 0..n {
                assert_eq!(
                    comp[v] == comp[u],
                    reference[v] == reference[u],
                    "partition mismatch at ({v},{u})"
                );
            }
        }
    }

    #[test]
    fn degree_centrality_counts_in_edges() {
        let g = small_graph();
        let (centr, _) = with_recorder(|rec| degree_centrality(&g, rec));
        // The graph is symmetric, so in-degree == out-degree.
        for v in 0..g.n_vertices() as u32 {
            assert_eq!(centr[v as usize] as usize, g.degree(v), "vertex {v}");
        }
    }

    #[test]
    fn dfs_and_bfs_visit_every_vertex_once() {
        let g = small_graph();
        let (d, _) = with_recorder(|rec| dfs(&g, rec));
        let (b, _) = with_recorder(|rec| bfs(&g, rec));
        assert_eq!(d, g.n_vertices());
        assert_eq!(b, g.n_vertices());
    }

    #[test]
    fn triangle_count_matches_brute_force_on_tiny_graph() {
        // Triangle 0-1-2 plus a pendant edge 2-3.
        let edges = vec![
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (0, 2),
            (2, 0),
            (2, 3),
            (3, 2),
        ];
        let g = Csr::from_edges(4, edges);
        let (t, _) = with_recorder(|rec| triangle_count(&g, usize::MAX, rec));
        assert_eq!(t, 1);
    }

    #[test]
    fn triangle_count_respects_cap() {
        let g = small_graph();
        let (_, sink_capped) = with_recorder(|rec| triangle_count(&g, 10, rec));
        let (_, sink_full) = with_recorder(|rec| triangle_count(&g, usize::MAX, rec));
        assert!(sink_capped.reads < sink_full.reads);
    }

    #[test]
    fn shortest_path_relaxations_are_sound() {
        let g = small_graph();
        let (dist, _) = with_recorder(|rec| shortest_path(&g, 0, 30, rec));
        assert_eq!(dist[0], 0);
        // Triangle inequality holds at convergence for every edge.
        let weights: Vec<u64> = (0..g.n_edges())
            .map(|e| 1 + (e as u64).wrapping_mul(2_654_435_761) % 64)
            .collect();
        for v in 0..g.n_vertices() as u32 {
            let (lo, hi) = (g.row_ptr[v as usize], g.row_ptr[v as usize + 1]);
            for e in lo..hi {
                let u = g.col[e as usize];
                let w = weights[e as usize];
                if dist[v as usize] < u64::MAX / 2 {
                    assert!(
                        dist[u as usize] <= dist[v as usize] + w,
                        "edge ({v},{u}) not relaxed"
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_emit_writes() {
        let g = small_graph();
        let (_, s) = with_recorder(|rec| degree_centrality(&g, rec));
        assert!(s.writes > 0);
        let (_, s) = with_recorder(|rec| page_rank(&g, 1, rec));
        assert!(s.writes as usize >= g.n_vertices());
    }
}
