//! Workload kernels: graph analytics and SPEC/PARSEC-like loops.

pub mod graph;
pub mod spec;
