//! Compact on-disk trace format: delta+varint encoding with a versioned
//! header, event count, and checksum, streamed through the
//! [`TraceSink`]/[`TraceSource`] pipeline so billion-access traces record
//! and replay in O(1) memory.
//!
//! # Wire format (version 1)
//!
//! A trace file is a 28-byte header followed by one variable-length record
//! per event. All multi-byte header integers are little-endian; payloads
//! use LEB128 varints (7 data bits per byte, continuation in bit 7).
//!
//! ```text
//! header:  magic "RMCCTRC\0" (8) | version u16 | reserved u16
//!          | event count u64 | checksum u64
//! ```
//!
//! The header is written as a placeholder up front and backpatched by
//! [`TraceWriter::finish`], so recording is single-pass. Each event record
//! starts with a lead byte in one of two forms:
//!
//! ```text
//! MRU hit  0 w d i i i i i   exact repeat of a recent address:
//!                            i = index into a 32-entry move-to-front
//!                            table of recently seen addresses; implies
//!                            work = 0. One byte total.
//! escape   1 f w d k s s s   f: 0 = payload is zigzag(delta from the
//!                            previous address), 1 = payload is the
//!                            absolute address; s: payload pre-shift
//!                            (0-7, recovers trailing zeros of aligned
//!                            addresses); k: a work varint follows.
//! ```
//!
//! `w`/`d` are the event's `is_write` and `dep_on_prev_load` flags. The
//! escape payload is `varint(value >> s)` followed by `varint(work)` when
//! `k` is set; the encoder picks whichever of the delta and absolute forms
//! varints shorter. Encoder and decoder update the move-to-front table and
//! previous-address register identically per event, so the decoder needs
//! no side tables in the file.
//!
//! The checksum folds every decoded event through SplitMix64 in order;
//! [`TraceReader`] verifies it after the last event, so truncation and
//! payload corruption surface as typed [`CodecError`]s, never as a
//! silently wrong replay.

use std::io::{Read, Seek, SeekFrom, Write};

use crate::corpus::splitmix64;
use crate::trace::{TraceEvent, TraceSink, TraceSource};

/// File magic: the first 8 bytes of every trace file.
pub const MAGIC: [u8; 8] = *b"RMCCTRC\0";
/// Wire-format version this build reads and writes.
pub const VERSION: u16 = 1;
/// Header size in bytes (magic + version + reserved + count + checksum).
pub const HEADER_BYTES: u64 = 28;

const MRU_SLOTS: usize = 32;

/// Why encoding or decoding a trace failed.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's wire-format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The file ended before the header-declared event count was decoded.
    Truncated,
    /// A record violated the wire format (bad lead byte or overlong varint).
    Corrupt(&'static str),
    /// Every event decoded, but the running checksum disagrees with the
    /// header — the payload bytes were altered.
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum the decoded events produced.
        actual: u64,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "trace i/o failed: {e}"),
            CodecError::BadMagic => write!(f, "not a trace file (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads {VERSION})"
                )
            }
            CodecError::Truncated => write!(f, "trace file truncated mid-stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt trace record: {what}"),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "trace checksum mismatch: header {expected:#018x}, decoded {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// What one finished recording contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events encoded.
    pub events: u64,
    /// Encoded payload bytes (excluding the header).
    pub payload_bytes: u64,
    /// SplitMix64 fold over the event stream, as written to the header.
    pub checksum: u64,
}

impl TraceSummary {
    /// Total file size: header plus payload.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        HEADER_BYTES + self.payload_bytes
    }

    /// Average encoded payload bytes per event (0 for an empty trace).
    #[must_use]
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            // Both counts are far below 2^53, so the division is exact
            // enough for a report row.
            self.payload_bytes as f64 / self.events as f64
        }
    }
}

/// Move-to-front table of recently seen addresses, kept in lockstep by the
/// encoder and decoder.
#[derive(Debug, Clone)]
struct Mru {
    slots: [u64; MRU_SLOTS],
    len: usize,
}

impl Mru {
    fn new() -> Self {
        Mru {
            slots: [0; MRU_SLOTS],
            len: 0,
        }
    }

    fn find(&self, addr: u64) -> Option<usize> {
        self.slots[..self.len].iter().position(|&a| a == addr)
    }

    fn get(&self, idx: usize) -> Option<u64> {
        self.slots[..self.len].get(idx).copied()
    }

    /// Moves `addr` to the front, inserting it (and evicting the oldest
    /// slot) if absent.
    fn touch(&mut self, addr: u64) {
        let upto = match self.find(addr) {
            Some(i) => i,
            None => {
                if self.len < MRU_SLOTS {
                    self.len += 1;
                }
                self.len - 1
            }
        };
        self.slots.copy_within(0..upto, 1);
        self.slots[0] = addr;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn varint_len(mut v: u64) -> u64 {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v & 0x7F) as u8 | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Folds one event into the running stream checksum.
fn fold_checksum(acc: u64, ev: &TraceEvent) -> u64 {
    let word = ev.addr
        ^ (u64::from(ev.work) << 24)
        ^ (u64::from(ev.is_write) << 62)
        ^ (u64::from(ev.dep_on_prev_load) << 63);
    splitmix64(acc.rotate_left(1) ^ word)
}

fn header_bytes(events: u64, checksum: u64) -> [u8; HEADER_BYTES as usize] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[..8].copy_from_slice(&MAGIC);
    h[8..10].copy_from_slice(&VERSION.to_le_bytes());
    // h[10..12] reserved, zero.
    h[12..20].copy_from_slice(&events.to_le_bytes());
    h[20..28].copy_from_slice(&checksum.to_le_bytes());
    h
}

/// Streaming trace encoder: a [`TraceSink`] that writes the wire format as
/// events arrive, then backpatches the header on [`TraceWriter::finish`].
///
/// The [`TraceSink`] trait is infallible, so I/O errors during `emit` are
/// stashed and reported by `finish` — a recording is only trustworthy once
/// `finish` returns `Ok`.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    out: W,
    prev: u64,
    mru: Mru,
    events: u64,
    payload_bytes: u64,
    checksum: u64,
    scratch: Vec<u8>,
    error: Option<std::io::Error>,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a recording by writing a placeholder header.
    pub fn new(mut out: W) -> Result<Self, CodecError> {
        out.write_all(&header_bytes(0, 0))?;
        Ok(TraceWriter {
            out,
            prev: 0,
            mru: Mru::new(),
            events: 0,
            payload_bytes: 0,
            checksum: 0,
            scratch: Vec::with_capacity(24),
            error: None,
        })
    }

    /// Events encoded so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Backpatches the header with the final event count and checksum,
    /// flushes, and returns the recording summary — or the first error the
    /// stream hit.
    pub fn finish(self) -> Result<TraceSummary, CodecError> {
        self.finish_into_inner().map(|(summary, _)| summary)
    }

    /// Like [`TraceWriter::finish`], but also hands back the underlying
    /// writer (useful for in-memory recordings).
    pub fn finish_into_inner(mut self) -> Result<(TraceSummary, W), CodecError> {
        if let Some(e) = self.error.take() {
            return Err(CodecError::Io(e));
        }
        self.out.seek(SeekFrom::Start(0))?;
        self.out
            .write_all(&header_bytes(self.events, self.checksum))?;
        self.out.flush()?;
        Ok((
            TraceSummary {
                events: self.events,
                payload_bytes: self.payload_bytes,
                checksum: self.checksum,
            },
            self.out,
        ))
    }

    fn encode(&mut self, ev: TraceEvent) {
        self.scratch.clear();
        let flags_w = u8::from(ev.is_write);
        let flags_d = u8::from(ev.dep_on_prev_load);
        if ev.work == 0 {
            if let Some(idx) = self.mru.find(ev.addr) {
                self.scratch
                    .push((idx as u8) | (flags_w << 6) | (flags_d << 5));
            }
        }
        if self.scratch.is_empty() {
            // Escape form: pick whichever of delta/absolute varints shorter.
            let delta = ev.addr.wrapping_sub(self.prev) as i64;
            let d_shift = (delta as u64).trailing_zeros().min(7);
            let d_payload = zigzag(delta >> d_shift);
            let a_shift = ev.addr.trailing_zeros().min(7);
            let a_payload = ev.addr >> a_shift;
            let (form, shift, payload) = if varint_len(a_payload) < varint_len(d_payload) {
                (1u8, a_shift as u8, a_payload)
            } else {
                (0u8, d_shift as u8, d_payload)
            };
            let has_work = u8::from(ev.work > 0);
            self.scratch.push(
                0x80 | (form << 6) | (flags_w << 5) | (flags_d << 4) | (has_work << 3) | shift,
            );
            push_varint(&mut self.scratch, payload);
            if ev.work > 0 {
                push_varint(&mut self.scratch, u64::from(ev.work));
            }
        }
        if let Err(e) = self.out.write_all(&self.scratch) {
            self.error = Some(e);
            return;
        }
        self.payload_bytes += self.scratch.len() as u64;
        self.events += 1;
        self.checksum = fold_checksum(self.checksum, &ev);
        self.prev = ev.addr;
        self.mru.touch(ev.addr);
    }
}

impl<W: Write + Seek> TraceSink for TraceWriter<W> {
    fn emit(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        self.encode(event);
    }
}

/// Streaming trace decoder: validates the header up front, then yields
/// events one at a time in O(1) memory and verifies the checksum after the
/// last one.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inp: R,
    prev: u64,
    mru: Mru,
    remaining: u64,
    total: u64,
    expected_checksum: u64,
    checksum: u64,
    error: Option<CodecError>,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    pub fn new(mut inp: R) -> Result<Self, CodecError> {
        let mut h = [0u8; HEADER_BYTES as usize];
        inp.read_exact(&mut h).map_err(eof_is_truncated)?;
        if h[..8] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([h[8], h[9]]);
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let total = u64::from_le_bytes([h[12], h[13], h[14], h[15], h[16], h[17], h[18], h[19]]);
        let expected_checksum =
            u64::from_le_bytes([h[20], h[21], h[22], h[23], h[24], h[25], h[26], h[27]]);
        Ok(TraceReader {
            inp,
            prev: 0,
            mru: Mru::new(),
            remaining: total,
            total,
            expected_checksum,
            checksum: 0,
            error: None,
        })
    }

    /// Events the header declared.
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.total
    }

    /// Events not yet decoded.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The error the infallible [`TraceSource::stream`] path swallowed, if
    /// any. Fallible callers should prefer [`TraceReader::read_to`].
    #[must_use]
    pub fn error(&self) -> Option<&CodecError> {
        self.error.as_ref()
    }

    /// Decodes the next event, or returns `Ok(None)` once the declared
    /// count is exhausted *and* the checksum verified.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, CodecError> {
        if self.remaining == 0 {
            if self.checksum != self.expected_checksum && self.total > 0 {
                return Err(CodecError::ChecksumMismatch {
                    expected: self.expected_checksum,
                    actual: self.checksum,
                });
            }
            return Ok(None);
        }
        let lead = self.read_byte()?;
        let ev = if lead & 0x80 == 0 {
            let idx = (lead & 0x1F) as usize;
            let addr = self
                .mru
                .get(idx)
                .ok_or(CodecError::Corrupt("MRU index past table fill"))?;
            TraceEvent {
                addr,
                is_write: lead & 0x40 != 0,
                work: 0,
                dep_on_prev_load: lead & 0x20 != 0,
            }
        } else {
            let shift = u32::from(lead & 0x07);
            let payload = self.read_varint()?;
            let addr = if lead & 0x40 != 0 {
                payload.wrapping_shl(shift)
            } else {
                self.prev
                    .wrapping_add((unzigzag(payload).wrapping_shl(shift)) as u64)
            };
            let work = if lead & 0x08 != 0 {
                let w = self.read_varint()?;
                u16::try_from(w).map_err(|_| CodecError::Corrupt("work exceeds u16"))?
            } else {
                0
            };
            TraceEvent {
                addr,
                is_write: lead & 0x20 != 0,
                work,
                dep_on_prev_load: lead & 0x10 != 0,
            }
        };
        self.remaining -= 1;
        self.checksum = fold_checksum(self.checksum, &ev);
        self.prev = ev.addr;
        self.mru.touch(ev.addr);
        Ok(Some(ev))
    }

    /// Drains every remaining event into `sink`, verifying the checksum at
    /// the end. Returns the number of events replayed.
    pub fn read_to(&mut self, sink: &mut dyn TraceSink) -> Result<u64, CodecError> {
        let mut n = 0u64;
        while let Some(ev) = self.next_event()? {
            sink.emit(ev);
            n += 1;
        }
        Ok(n)
    }

    fn read_byte(&mut self) -> Result<u8, CodecError> {
        let mut b = [0u8; 1];
        self.inp.read_exact(&mut b).map_err(eof_is_truncated)?;
        Ok(b[0])
    }

    fn read_varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for i in 0..10 {
            let b = self.read_byte()?;
            v |= u64::from(b & 0x7F) << (7 * i);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Corrupt("overlong varint"))
    }
}

fn eof_is_truncated(e: std::io::Error) -> CodecError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        CodecError::Truncated
    } else {
        CodecError::Io(e)
    }
}

impl<R: Read> TraceSource for TraceReader<R> {
    /// Replays the remaining events. The trait is infallible, so a decode
    /// error stops the stream early and is stashed on
    /// [`TraceReader::error`]; fallible callers should use
    /// [`TraceReader::read_to`] instead.
    fn stream(&mut self, sink: &mut dyn TraceSink) {
        if let Err(e) = self.read_to(sink) {
            self.error = Some(e);
        }
    }
}

/// Records one full pass of `source` into the file at `path` (created or
/// truncated), buffered, returning the recording summary.
pub fn record_to_path(
    path: &std::path::Path,
    source: &mut dyn TraceSource,
) -> Result<TraceSummary, CodecError> {
    let file = std::fs::File::create(path)?;
    let mut writer = TraceWriter::new(std::io::BufWriter::new(file))?;
    source.stream(&mut writer);
    writer.finish()
}

/// Opens the trace file at `path` for streaming replay, buffered.
pub fn reader_from_path(
    path: &std::path::Path,
) -> Result<TraceReader<std::io::BufReader<std::fs::File>>, CodecError> {
    let file = std::fs::File::open(path)?;
    TraceReader::new(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn encode(events: &[TraceEvent]) -> (Vec<u8>, TraceSummary) {
        let mut writer = TraceWriter::new(Cursor::new(Vec::new())).expect("writer");
        for &ev in events {
            writer.emit(ev);
        }
        let (summary, cursor) = writer.finish_into_inner().expect("finish");
        (cursor.into_inner(), summary)
    }

    fn decode(bytes: &[u8]) -> Result<Vec<TraceEvent>, CodecError> {
        let mut reader = TraceReader::new(Cursor::new(bytes))?;
        let mut out: Vec<TraceEvent> = Vec::new();
        reader.read_to(&mut out)?;
        Ok(out)
    }

    fn ev(addr: u64, is_write: bool, work: u16, dep: bool) -> TraceEvent {
        TraceEvent {
            addr,
            is_write,
            work,
            dep_on_prev_load: dep,
        }
    }

    #[test]
    fn roundtrips_a_mixed_stream() {
        let events = vec![
            ev(0, false, 0, false),
            ev(64, true, 3, false),
            ev(64, false, 0, true),
            ev(1 << 40, false, 0, false),
            ev(64, true, 0, false),
            ev(u64::MAX, false, u16::MAX, true),
            ev(0, true, 1, false),
            ev(12_345, false, 0, false),
        ];
        let (bytes, summary) = encode(&events);
        assert_eq!(summary.events, events.len() as u64);
        assert_eq!(summary.total_bytes(), bytes.len() as u64);
        assert_eq!(decode(&bytes).expect("decode"), events);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let (bytes, summary) = encode(&[]);
        assert_eq!(summary.events, 0);
        assert_eq!(bytes.len() as u64, HEADER_BYTES);
        assert_eq!(summary.bytes_per_event(), 0.0);
        assert!(decode(&bytes).expect("decode").is_empty());
    }

    #[test]
    fn exact_repeats_cost_one_byte() {
        // 1 escape + 63 MRU hits over a 4-address working set.
        let mut events = Vec::new();
        for i in 0u64..64 {
            events.push(ev((i % 4) * 64, i % 3 == 0, 0, false));
        }
        let (bytes, summary) = encode(&events);
        assert!(
            summary.payload_bytes < 4 + 2 * 4 + 60,
            "MRU hits not 1 byte: {} payload bytes for {} events",
            summary.payload_bytes,
            summary.events
        );
        assert_eq!(decode(&bytes).expect("decode"), events);
    }

    #[test]
    fn replays_through_the_trace_source_trait() {
        let events: Vec<TraceEvent> = (0..100u64)
            .map(|i| ev(i * 192, i % 5 == 0, 0, false))
            .collect();
        let (bytes, _) = encode(&events);
        let mut reader = TraceReader::new(Cursor::new(&bytes)).expect("header");
        assert_eq!(reader.event_count(), 100);
        let mut replayed: Vec<TraceEvent> = Vec::new();
        reader.stream(&mut replayed);
        assert!(reader.error().is_none());
        assert_eq!(replayed, events);
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let events: Vec<TraceEvent> = (0..50u64).map(|i| ev(i * 4096, false, 0, false)).collect();
        let (bytes, _) = encode(&events);
        for cut in [5, HEADER_BYTES as usize, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).expect_err("truncation must error");
            assert!(matches!(err, CodecError::Truncated), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn corrupted_payload_is_a_typed_error() {
        let events: Vec<TraceEvent> = (0..50u64).map(|i| ev(i * 4096, false, 0, false)).collect();
        let (mut bytes, _) = encode(&events);
        // Flip a payload bit past the header: either the stream checksum
        // catches it, or the record structure itself does.
        let mid = HEADER_BYTES as usize + (bytes.len() - HEADER_BYTES as usize) / 2;
        bytes[mid] ^= 0x41;
        let err = decode(&bytes).expect_err("corruption must error");
        assert!(
            matches!(
                err,
                CodecError::ChecksumMismatch { .. }
                    | CodecError::Corrupt(_)
                    | CodecError::Truncated
            ),
            "unexpected error class: {err}"
        );
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let (mut bytes, _) = encode(&[ev(64, false, 0, false)]);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode(&bytes).expect_err("magic"),
            CodecError::BadMagic
        ));
        bytes[0] ^= 0xFF;
        bytes[8] = 0xEE;
        assert!(matches!(
            decode(&bytes).expect_err("version"),
            CodecError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn work_saturation_edge_survives() {
        let events = vec![
            ev(0, false, u16::MAX, false),
            ev(0, false, u16::MAX, false),
            ev(1, true, u16::MAX, true),
        ];
        let (bytes, _) = encode(&events);
        assert_eq!(decode(&bytes).expect("decode"), events);
    }

    #[test]
    fn file_paths_record_and_replay() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rmcc-codec-test-{}.rmt", std::process::id()));
        let mut source: Vec<TraceEvent> = (0..200u64)
            .map(|i| ev(i * 64, i % 4 == 0, 0, false))
            .collect();
        let summary = record_to_path(&path, &mut source).expect("record");
        assert_eq!(summary.events, 200);
        let mut reader = reader_from_path(&path).expect("open");
        let mut replayed: Vec<TraceEvent> = Vec::new();
        reader.read_to(&mut replayed).expect("replay");
        assert_eq!(replayed, source);
        let on_disk = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        assert_eq!(on_disk, summary.total_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn errors_display_and_chain() {
        let io = CodecError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
        let mismatch = CodecError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(mismatch.to_string().contains("mismatch"));
        assert!(std::error::Error::source(&mismatch).is_none());
    }
}
