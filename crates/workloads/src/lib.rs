//! Workload substrate for the RMCC secure-memory reproduction — the
//! stand-in for Pin-instrumented GraphBig, PARSEC, and SPEC binaries.
//!
//! * [`trace`] — the event format kernels emit and sinks that consume it.
//! * [`arena`] — instrumented containers ([`arena::TVec`]) whose element
//!   accesses are traced, so *running* a kernel *is* tracing it.
//! * [`graph`] — R-MAT graph generation and CSR storage.
//! * [`kernels`] — the actual algorithms: eight GraphBig kernels plus
//!   canneal/omnetpp/mcf-like loops.
//! * [`workload`] — the registry mapping the paper's Figure 3 workload
//!   names to runnable kernels at three size presets.
//!
//! # Example
//!
//! ```
//! use rmcc_workloads::trace::CountingSink;
//! use rmcc_workloads::workload::{Scale, Workload};
//!
//! let mut sink = CountingSink::default();
//! Workload::Canneal.run(Scale::Tiny, &mut sink);
//! assert!(sink.reads > 0 && sink.writes > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod graph;
pub mod kernels;
pub mod trace;
pub mod workload;

pub use arena::{Arena, TVec};
pub use graph::{rmat, Csr, RmatParams};
pub use trace::{CountingSink, FnSink, Recorder, TraceEvent, TraceSink, TraceSource, VecSink};
pub use workload::{graph_for, Scale, Workload, WorkloadSource};
