//! Workload substrate for the RMCC secure-memory reproduction — the
//! stand-in for Pin-instrumented GraphBig, PARSEC, and SPEC binaries.
//!
//! * [`trace`] — the event format kernels emit and sinks that consume it.
//! * [`arena`] — instrumented containers ([`arena::TVec`]) whose element
//!   accesses are traced, so *running* a kernel *is* tracing it.
//! * [`graph`] — R-MAT graph generation and CSR storage.
//! * [`kernels`] — the actual algorithms: eight GraphBig kernels plus
//!   canneal/omnetpp/mcf-like loops.
//! * [`workload`] — the registry mapping the paper's Figure 3 workload
//!   names to runnable kernels at three size presets.
//! * [`corpus`] — the serving-scale scenario generators (key-value
//!   serving, phase change, adversarial locality) and the shared integer
//!   zipfian sampler.
//! * [`codec`] — the compact on-disk trace format (delta+varint, checksummed)
//!   for recording a stream once and replaying it in O(1) memory.
//!
//! # Example
//!
//! ```
//! use rmcc_workloads::trace::CountingSink;
//! use rmcc_workloads::workload::{Scale, Workload};
//!
//! let mut sink = CountingSink::default();
//! Workload::Canneal.run(Scale::Tiny, &mut sink).expect("no graph needed");
//! assert!(sink.reads > 0 && sink.writes > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod codec;
pub mod corpus;
pub mod graph;
pub mod kernels;
pub mod trace;
pub mod workload;

pub use arena::{Arena, TVec};
pub use codec::{CodecError, TraceReader, TraceSummary, TraceWriter};
pub use corpus::{
    zipf_rank, zipf_rank_sharp, AdversarialLocalityConfig, KvServingConfig, PhaseChangeConfig,
    Scenario,
};
pub use graph::{rmat, Csr, RmatParams};
pub use trace::{CountingSink, FnSink, Recorder, TraceEvent, TraceSink, TraceSource, VecSink};
pub use workload::{graph_for, Scale, Workload, WorkloadError, WorkloadSource};
