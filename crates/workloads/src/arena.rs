//! Instrumented containers: the reproduction's stand-in for Pin.
//!
//! Kernels allocate their data structures from an [`Arena`], which lays each
//! container out in a contiguous, 2 MB-aligned region of the virtual address
//! space. Every element access goes through a [`crate::trace::Recorder`], so
//! running a kernel *is* tracing it — the same way the paper instruments
//! native binaries with Pintool.

use crate::trace::Recorder;

/// Alignment of arena regions: one 2 MB huge page, matching the paper's
/// "2MB standard huge pages" methodology (§III, §V).
pub const REGION_ALIGN: u64 = 2 << 20;

/// Allocates virtual address ranges for instrumented containers.
#[derive(Debug, Clone)]
pub struct Arena {
    next: u64,
}

impl Arena {
    /// Creates an arena whose first region starts at one huge page, keeping
    /// address 0 unmapped.
    pub fn new() -> Self {
        Arena { next: REGION_ALIGN }
    }

    /// Bytes of virtual address space handed out so far.
    pub fn footprint(&self) -> u64 {
        self.next - REGION_ALIGN
    }

    /// Reserves a region of `bytes`, aligned up to a huge page.
    fn reserve(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let span = bytes.div_ceil(REGION_ALIGN) * REGION_ALIGN;
        self.next += span;
        base
    }

    /// Allocates an instrumented vector of `len` copies of `init`.
    pub fn vec_of<T: Clone>(&mut self, len: usize, init: T) -> TVec<T> {
        let elem_bytes = std::mem::size_of::<T>().max(1) as u64;
        let base = self.reserve(len as u64 * elem_bytes);
        TVec {
            base,
            elem_bytes,
            data: vec![init; len],
        }
    }

    /// Allocates an instrumented vector from existing data.
    pub fn vec_from<T>(&mut self, data: Vec<T>) -> TVec<T> {
        let elem_bytes = std::mem::size_of::<T>().max(1) as u64;
        let base = self.reserve(data.len() as u64 * elem_bytes);
        TVec {
            base,
            elem_bytes,
            data,
        }
    }
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

/// An instrumented vector: element reads/writes emit trace events.
///
/// Untraced `raw`/`raw_mut` views exist for setup and verification code that
/// should not pollute the trace (the equivalent of excluding initialization
/// from a Pin region of interest).
///
/// # Examples
///
/// ```
/// use rmcc_workloads::arena::Arena;
/// use rmcc_workloads::trace::{CountingSink, Recorder};
///
/// let mut arena = Arena::new();
/// let mut v = arena.vec_of(1024, 0u64);
/// let mut sink = CountingSink::default();
/// let mut rec = Recorder::new(&mut sink);
/// v.set(3, 7, &mut rec);
/// assert_eq!(*v.get(3, &mut rec), 7);
/// drop(rec);
/// assert_eq!(sink.reads + sink.writes, 2);
/// ```
#[derive(Debug, Clone)]
pub struct TVec<T> {
    base: u64,
    elem_bytes: u64,
    data: Vec<T>,
}

impl<T> TVec<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Virtual byte address of element `i`.
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base + i as u64 * self.elem_bytes
    }

    /// Reads element `i`, emitting an independent load.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize, rec: &mut Recorder<'_>) -> &T {
        rec.read(self.addr_of(i), false);
        &self.data[i]
    }

    /// Reads element `i`, emitting a *dependent* load — use when `i` was
    /// computed from the previous load's value (pointer chasing).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get_dep(&self, i: usize, rec: &mut Recorder<'_>) -> &T {
        rec.read(self.addr_of(i), true);
        &self.data[i]
    }

    /// Writes element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, value: T, rec: &mut Recorder<'_>) {
        rec.write(self.addr_of(i));
        self.data[i] = value;
    }

    /// Read-modify-write of element `i` (one load + one store, as a cached
    /// RMW appears at the memory system).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn update(&mut self, i: usize, f: impl FnOnce(&T) -> T, rec: &mut Recorder<'_>) {
        rec.read(self.addr_of(i), false);
        let new = f(&self.data[i]);
        rec.write(self.addr_of(i));
        self.data[i] = new;
    }

    /// Untraced view for setup/verification.
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Untraced mutable view for setup.
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, TraceEvent};

    #[test]
    fn regions_are_huge_page_aligned_and_disjoint() {
        let mut arena = Arena::new();
        let a = arena.vec_of(10, 0u8);
        let b = arena.vec_of(3_000_000, 0u8); // > 1 huge page
        let c = arena.vec_of(1, 0u64);
        assert_eq!(a.addr_of(0) % REGION_ALIGN, 0);
        assert_eq!(b.addr_of(0) % REGION_ALIGN, 0);
        assert_eq!(c.addr_of(0) % REGION_ALIGN, 0);
        assert!(a.addr_of(9) < b.addr_of(0));
        assert!(b.addr_of(2_999_999) < c.addr_of(0));
        assert!(arena.footprint() >= 3_000_000);
    }

    #[test]
    fn element_addresses_stride_by_size() {
        let mut arena = Arena::new();
        let v = arena.vec_of(4, 0u64);
        assert_eq!(v.addr_of(1) - v.addr_of(0), 8);
        let w = arena.vec_of(4, 0u32);
        assert_eq!(w.addr_of(3) - w.addr_of(2), 4);
    }

    #[test]
    fn accesses_trace_with_correct_addresses() {
        let mut arena = Arena::new();
        let mut v = arena.vec_of(16, 0i32);
        let mut events: Vec<TraceEvent> = Vec::new();
        {
            let mut rec = Recorder::new(&mut events);
            v.set(2, 42, &mut rec);
            let _ = v.get(2, &mut rec);
            let _ = v.get_dep(5, &mut rec);
        }
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].addr, v.addr_of(2));
        assert!(events[0].is_write);
        assert_eq!(events[1].addr, v.addr_of(2));
        assert!(!events[1].is_write && !events[1].dep_on_prev_load);
        assert!(events[2].dep_on_prev_load);
        assert_eq!(v.raw()[2], 42);
    }

    #[test]
    fn update_emits_read_then_write() {
        let mut arena = Arena::new();
        let mut v = arena.vec_of(4, 10u64);
        let mut events: Vec<TraceEvent> = Vec::new();
        {
            let mut rec = Recorder::new(&mut events);
            v.update(1, |x| x + 1, &mut rec);
        }
        assert_eq!(events.len(), 2);
        assert!(!events[0].is_write);
        assert!(events[1].is_write);
        assert_eq!(v.raw()[1], 11);
    }

    #[test]
    fn raw_views_do_not_trace() {
        let mut arena = Arena::new();
        let mut v = arena.vec_of(4, 0u8);
        let mut c = CountingSink::default();
        {
            let _rec = Recorder::new(&mut c);
            v.raw_mut()[0] = 9;
            assert_eq!(v.raw()[0], 9);
        }
        assert_eq!(c.reads + c.writes, 0);
    }

    #[test]
    fn vec_from_preserves_contents() {
        let mut arena = Arena::new();
        let v = arena.vec_from(vec![1u16, 2, 3]);
        assert_eq!(v.raw(), &[1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
    }
}
