//! Property-based tests for trace generation and the trace codec.

use proptest::prelude::*;
use rmcc_workloads::arena::Arena;
use rmcc_workloads::codec::{TraceReader, TraceWriter};
use rmcc_workloads::graph::{rmat, Csr, RmatParams};
use rmcc_workloads::trace::{CountingSink, Recorder, TraceEvent, TraceSink, TraceSource, VecSink};
use rmcc_workloads::workload::{graph_for, Scale, Workload};
use std::io::Cursor;

proptest! {
    /// CSR construction is total and self-consistent for arbitrary edge
    /// lists.
    #[test]
    fn csr_from_arbitrary_edges(
        n in 1usize..64,
        edges in prop::collection::vec((0u32..64, 0u32..64), 0..200),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(s, d)| (s % n as u32, d % n as u32))
            .collect();
        let g = Csr::from_edges(n, edges.clone());
        prop_assert_eq!(g.n_vertices(), n);
        // Every input edge is present; no edge appears that wasn't input.
        for &(s, d) in &edges {
            prop_assert!(g.neighbors(s).contains(&d));
        }
        let total: usize = (0..n as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, g.n_edges());
        // Neighbor lists are sorted (required by triangle counting).
        for v in 0..n as u32 {
            prop_assert!(g.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// R-MAT generation is deterministic in all parameters.
    #[test]
    fn rmat_determinism(scale in 4u32..9, ef in 1u32..6, seed in any::<u64>()) {
        let p = RmatParams::graph500(scale, ef, seed);
        prop_assert_eq!(rmat(p), rmat(p));
    }

    /// Arena regions never overlap and element addresses stay in their
    /// region.
    #[test]
    fn arena_regions_disjoint(sizes in prop::collection::vec(1usize..10_000, 1..20)) {
        let mut arena = Arena::new();
        let vecs: Vec<_> = sizes.iter().map(|&s| arena.vec_of(s, 0u64)).collect();
        let mut spans: Vec<(u64, u64)> = vecs
            .iter()
            .map(|v| (v.addr_of(0), v.addr_of(v.len() - 1) + 8))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "regions overlap: {:?}", w);
        }
    }
}

/// Every workload's tiny trace is byte-identical across runs (required for
/// cross-scheme comparisons to be apples-to-apples).
#[test]
fn all_workloads_deterministic_at_tiny() {
    let g = graph_for(Scale::Tiny);
    for w in Workload::ALL {
        let run = || {
            let mut events: Vec<TraceEvent> = Vec::new();
            if w.uses_graph() {
                w.run_on(Some(&g), Scale::Tiny, &mut events)
            } else {
                w.run_on(None, Scale::Tiny, &mut events)
            }
            .expect("graph supplied when needed");
            events
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len(), "{w}: lengths differ");
        assert_eq!(a, b, "{w}: traces differ");
    }
}

/// Dependent loads exist in every irregular workload — the property the
/// core model's latency sensitivity rests on.
#[test]
fn irregular_workloads_mark_dependencies() {
    let g = graph_for(Scale::Tiny);
    for w in [
        Workload::PageRank,
        Workload::Bfs,
        Workload::Canneal,
        Workload::Omnetpp,
    ] {
        let mut sink = CountingSink::default();
        if w.uses_graph() {
            w.run_on(Some(&g), Scale::Tiny, &mut sink)
        } else {
            w.run_on(None, Scale::Tiny, &mut sink)
        }
        .expect("graph supplied when needed");
        assert!(
            sink.dependent * 20 > sink.reads,
            "{w}: too few dependent loads"
        );
    }
}

proptest! {
    /// The compact trace codec is lossless for arbitrary event streams —
    /// any address pattern, any read/write/dependency mix, any `work`
    /// value up to the saturation point `u16::MAX` — and every roundtrip
    /// passes the checksum.
    #[test]
    fn codec_roundtrips_arbitrary_streams(
        raw in prop::collection::vec(
            (any::<u64>(), any::<bool>(), any::<u16>(), any::<bool>()),
            0..192,
        ),
    ) {
        let mut events: Vec<TraceEvent> = raw
            .iter()
            .map(|&(addr, is_write, work, dep)| TraceEvent {
                addr,
                is_write,
                work,
                dep_on_prev_load: dep,
            })
            .collect();
        // Always include the work-saturation edge the Recorder can emit.
        events.push(TraceEvent {
            addr: u64::MAX,
            is_write: true,
            work: u16::MAX,
            dep_on_prev_load: true,
        });

        let mut writer = TraceWriter::new(Cursor::new(Vec::new()))
            .unwrap_or_else(|e| panic!("writer: {e}"));
        for ev in &events {
            writer.emit(*ev);
        }
        let (summary, cursor) = writer
            .finish_into_inner()
            .unwrap_or_else(|e| panic!("finish: {e}"));
        prop_assert_eq!(summary.events, events.len() as u64);

        let mut reader = TraceReader::new(Cursor::new(cursor.into_inner()))
            .unwrap_or_else(|e| panic!("reader: {e}"));
        prop_assert_eq!(reader.event_count(), events.len() as u64);
        let mut sink = VecSink::default();
        reader.stream(&mut sink);
        prop_assert!(reader.error().is_none(), "decode error: {:?}", reader.error());
        prop_assert_eq!(sink.events, events);
    }
}

/// Recorder `work` accounting survives interleaving with accesses.
#[test]
fn recorder_work_accounting() {
    let mut sink = CountingSink::default();
    {
        let mut rec = Recorder::new(&mut sink);
        for i in 0..100u32 {
            rec.work(i % 7);
            rec.read(i as u64 * 64, false);
        }
    }
    let expected: u64 = (0..100u64).map(|i| i % 7).sum();
    assert_eq!(sink.work, expected);
}
