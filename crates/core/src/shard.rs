//! Per-shard memoization state for the sharded secure-memory service.
//!
//! The service in `rmcc_secmem::service` splits the memory image into N
//! independent shards; this module gives each shard its own slice of the
//! RMCC stack — a [`MemoizationTable`] and a fixed-point [`TrafficBudget`]
//! ledger — packaged as a [`CounterUpdatePolicy`] the shard's engine calls
//! on every write and relevel.
//!
//! Two deliberate properties:
//!
//! * **Nothing is shared between shards.** Each policy owns its table and
//!   budget outright; the only cross-shard artifact is the read-only
//!   aggregation below. That keeps the hot path free of cross-shard
//!   contention and makes every shard's trajectory a pure function of the
//!   traffic routed to it.
//! * **Deterministic epoch aggregation.** Each shard's budget ticks epochs
//!   on its *own* access count (a shard serving 1/N of the traffic crosses
//!   epoch boundaries at 1/N the global rate, exactly as if it were a
//!   smaller standalone system). [`aggregate_stats`] folds per-shard
//!   tallies in shard-index order into one [`ShardMemoStats`]; every field
//!   is a commutative saturating sum (plus one AND), so the aggregate is
//!   identical no matter how the shards were scheduled.
//!
//! The policy's steering rule mirrors `rmcc::Rmcc::update_counter` in
//! miniature: bump to the nearest memoized value above the current counter
//! when the budget affords the extra traffic, else fall back to the
//! baseline `current + 1`; relevel targets snap up to memoized values for
//! free (the relevel re-encrypts its coverage region either way).

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rmcc_secmem::engine::CounterUpdatePolicy;

use crate::budget::TrafficBudget;
use crate::table::{MemoizationTable, TableConfig, TableStats};

/// How to build one shard's memoization state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardMemoConfig {
    /// Memoization-table geometry.
    pub table: TableConfig,
    /// Overhead-traffic budget as a fraction of total traffic (§IV-C1's
    /// 1%).
    pub budget_fraction: f64,
    /// Accesses per budget/reselection epoch, counted per shard.
    pub epoch_accesses: u64,
}

impl ShardMemoConfig {
    /// The paper's parameters: 16×8 table, 1% budget, 1 M-access epochs.
    pub fn paper() -> Self {
        ShardMemoConfig {
            table: TableConfig::paper(),
            budget_fraction: 0.01,
            epoch_accesses: crate::budget::EPOCH_ACCESSES,
        }
    }

    /// The same config with a shorter epoch (tests and small sim runs).
    #[must_use]
    pub fn with_epoch(mut self, epoch_accesses: u64) -> Self {
        self.epoch_accesses = epoch_accesses.max(1);
        self
    }
}

/// One shard's mutable memoization state.
struct MemoCore {
    /// The build-time configuration, kept so a reset can reconstruct the
    /// just-built state deterministically.
    cfg: ShardMemoConfig,
    /// Every group start seeded through [`MemoHandle::seed_groups`], in
    /// seeding order — replayed on reset so a rebuilt shard's ladder is
    /// identical to a never-faulted twin's.
    seeds: Vec<u64>,
    table: MemoizationTable,
    budget: TrafficBudget,
    conformed_writes: u64,
    baseline_writes: u64,
    memoized_relevels: u64,
}

fn lock(core: &Arc<Mutex<MemoCore>>) -> MutexGuard<'_, MemoCore> {
    core.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Builds one shard's policy plus the handle the host keeps for telemetry,
/// seeding, and fault injection. The policy goes into the shard's engine
/// (`SecureMemoryService::with_policies`); the handle stays outside the
/// engine, which is what lets telemetry read — and the fault harness
/// corrupt — a live shard's table without touching the engine's API.
pub fn memo_policy(cfg: &ShardMemoConfig) -> (Box<dyn CounterUpdatePolicy>, MemoHandle) {
    let core = Arc::new(Mutex::new(MemoCore {
        cfg: *cfg,
        seeds: Vec::new(),
        table: MemoizationTable::new(cfg.table),
        budget: TrafficBudget::with_epoch(cfg.budget_fraction, cfg.epoch_accesses),
        conformed_writes: 0,
        baseline_writes: 0,
        memoized_relevels: 0,
    }));
    let handle = MemoHandle {
        core: Arc::clone(&core),
    };
    (Box::new(MemoPolicy { core }), handle)
}

/// A [`CounterUpdatePolicy`] backed by one shard's memoization table and
/// traffic budget. Built via [`memo_policy`].
pub struct MemoPolicy {
    core: Arc<Mutex<MemoCore>>,
}

impl CounterUpdatePolicy for MemoPolicy {
    fn bump(&mut self, current: u64) -> u64 {
        let mut core = lock(&self.core);
        if core.budget.on_access() {
            // Epoch boundary: LFU demotion / shadow promotion, no forced
            // insertion (the host seeds groups through the handle).
            core.table.epoch_reselect(None);
        }
        let next = current.saturating_add(1);
        if let Some(target) = core.table.nearest_memoized_above(current) {
            // Landing on the ladder is free when it *is* the baseline bump;
            // a farther jump charges one overhead request to the ledger
            // (the jump's worth of extra counter traffic, the same unit
            // `Rmcc::update_counter` accounts).
            let affordable = target == next || core.budget.try_consume(1);
            if affordable && core.table.lookup(target).is_hit() {
                core.conformed_writes = core.conformed_writes.saturating_add(1);
                return target;
            }
            // Unaffordable, or the entry was poisoned: `lookup` has already
            // counted the fail-safe fallback and cleared the poison, so the
            // table self-heals while this write takes the baseline path.
        }
        core.baseline_writes = core.baseline_writes.saturating_add(1);
        next
    }

    fn relevel_target(&mut self, min_target: u64) -> u64 {
        let mut core = lock(&self.core);
        match core
            .table
            .nearest_memoized_above(min_target.saturating_sub(1))
        {
            Some(target) if target >= min_target => {
                core.memoized_relevels = core.memoized_relevels.saturating_add(1);
                target
            }
            _ => min_target,
        }
    }

    /// Rebuild-time reset: discards every table entry (including poison
    /// marks), replays the recorded seed ladder, and restarts the budget
    /// ledger from its just-built configuration. Cumulative table tallies
    /// survive (they are history, not state); the budget ledger's counters
    /// restart with it, since spend/epoch position *is* its state.
    fn reset(&mut self) {
        let mut core = lock(&self.core);
        core.table.reset_entries();
        let seeds: Vec<u64> = core.seeds.clone();
        core.table.seed_groups(seeds);
        core.budget = TrafficBudget::with_epoch(core.cfg.budget_fraction, core.cfg.epoch_accesses);
    }

    /// Detected-but-unserved corrupted entries — the health monitor's
    /// quarantine signal.
    fn scrub(&mut self) -> u64 {
        lock(&self.core).table.poisoned_entries()
    }
}

/// The host-side handle to one shard's memoization state.
#[derive(Clone)]
pub struct MemoHandle {
    core: Arc<Mutex<MemoCore>>,
}

impl MemoHandle {
    /// Seeds consecutive-value groups, one per `starts` entry (warm start,
    /// mirroring the high-value monitor's insertions). Seeds are recorded
    /// so a rebuild-time [`CounterUpdatePolicy::reset`] can replay them.
    pub fn seed_groups(&self, starts: impl IntoIterator<Item = u64>) {
        let mut core = lock(&self.core);
        for s in starts {
            core.seeds.push(s);
            core.table.insert_group(s);
        }
    }

    /// Poisons the cached entry for `value` if memoized (the fault
    /// harness's seam). Returns whether anything was corrupted.
    pub fn corrupt_entry(&self, value: u64) -> bool {
        lock(&self.core).table.corrupt_entry(value)
    }

    /// Poisons *every* memoized value at once — the massive-upset injection
    /// that should trip a quarantine rather than entry-at-a-time healing.
    /// Returns how many values were poisoned.
    pub fn corrupt_all(&self) -> u64 {
        lock(&self.core).table.corrupt_all_entries()
    }

    /// How many values are currently marked corrupted and unhealed.
    pub fn poisoned_entries(&self) -> u64 {
        lock(&self.core).table.poisoned_entries()
    }

    /// Whether `value` is currently memoized and trusted (no state change).
    pub fn probe(&self, value: u64) -> bool {
        lock(&self.core).table.probe(value)
    }

    /// This shard's cumulative tallies.
    pub fn stats(&self) -> ShardMemoStats {
        let core = lock(&self.core);
        ShardMemoStats {
            table: core.table.stats(),
            budget_spent: core.budget.total_spent(),
            budget_accesses: core.budget.total_accesses(),
            budget_epochs: core.budget.epochs(),
            conformed_writes: core.conformed_writes,
            baseline_writes: core.baseline_writes,
            memoized_relevels: core.memoized_relevels,
            budget_ok: core.budget.invariant_holds(),
        }
    }
}

/// Cumulative per-shard (or, after [`aggregate_stats`], service-wide)
/// memoization tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMemoStats {
    /// Memoization-table hit/miss/maintenance counters.
    pub table: TableStats,
    /// Overhead requests the budget ledger actually spent.
    pub budget_spent: u64,
    /// Accesses the ledger metered.
    pub budget_accesses: u64,
    /// Completed budget epochs.
    pub budget_epochs: u64,
    /// Writes steered onto a memoized value.
    pub conformed_writes: u64,
    /// Writes that took the baseline `current + 1` path.
    pub baseline_writes: u64,
    /// Overflow relevels that landed on a memoized value.
    pub memoized_relevels: u64,
    /// Whether every folded ledger's spend invariant held.
    pub budget_ok: bool,
}

impl ShardMemoStats {
    /// Field-wise fold of two tallies (sums, `budget_ok` ANDed).
    #[must_use]
    pub fn merged(self, other: ShardMemoStats) -> ShardMemoStats {
        ShardMemoStats {
            table: self.table.merged(other.table),
            budget_spent: self.budget_spent.saturating_add(other.budget_spent),
            budget_accesses: self.budget_accesses.saturating_add(other.budget_accesses),
            budget_epochs: self.budget_epochs.saturating_add(other.budget_epochs),
            conformed_writes: self.conformed_writes.saturating_add(other.conformed_writes),
            baseline_writes: self.baseline_writes.saturating_add(other.baseline_writes),
            memoized_relevels: self
                .memoized_relevels
                .saturating_add(other.memoized_relevels),
            budget_ok: self.budget_ok && other.budget_ok,
        }
    }
}

/// Folds every shard's tallies, in shard-index order, into one aggregate.
/// Deterministic for a given set of per-shard states regardless of how the
/// service scheduled the shards (every field is commutative).
pub fn aggregate_stats(handles: &[MemoHandle]) -> ShardMemoStats {
    handles.iter().fold(
        ShardMemoStats {
            budget_ok: true,
            ..ShardMemoStats::default()
        },
        |acc, h| acc.merged(h.stats()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_cfg() -> ShardMemoConfig {
        // Short epochs shrink the per-epoch allowance (fraction × epoch);
        // raise the fraction so a 64-access epoch still affords jumps.
        let mut cfg = ShardMemoConfig::paper().with_epoch(64);
        cfg.budget_fraction = 0.25;
        cfg
    }

    #[test]
    fn bump_conforms_to_seeded_ladder_and_counts_it() {
        let (mut policy, handle) = memo_policy(&short_cfg());
        handle.seed_groups([1_000]);
        assert_eq!(policy.bump(0), 1_000, "jump to the nearest memoized value");
        let s = handle.stats();
        assert_eq!(s.conformed_writes, 1);
        assert_eq!(s.budget_spent, 1, "the jump charged the ledger");
        assert!(s.budget_ok);
        // Within the group the baseline bump *is* the next rung: free.
        assert_eq!(policy.bump(1_000), 1_001);
        assert_eq!(handle.stats().budget_spent, 1);
    }

    #[test]
    fn bump_above_ladder_takes_baseline_path() {
        let (mut policy, handle) = memo_policy(&short_cfg());
        handle.seed_groups([1_000]);
        assert_eq!(policy.bump(5_000), 5_001);
        let s = handle.stats();
        assert_eq!(s.baseline_writes, 1);
        assert_eq!(s.conformed_writes, 0);
    }

    #[test]
    fn corrupted_entry_fails_safe_then_heals() {
        let (mut policy, handle) = memo_policy(&short_cfg());
        handle.seed_groups([1_000]);
        assert!(handle.corrupt_entry(1_000));
        assert!(!handle.probe(1_000), "poisoned entries are untrusted");
        // The steering still *aims* at 1000 but the poisoned lookup falls
        // back to the baseline path and clears the poison.
        assert_eq!(policy.bump(0), 1);
        let s = handle.stats();
        assert_eq!(s.table.fallbacks, 1);
        assert_eq!(s.baseline_writes, 1);
        // Healed: the next write conforms again.
        assert_eq!(policy.bump(1), 1_000);
        assert_eq!(handle.stats().conformed_writes, 1);
    }

    #[test]
    fn relevel_snaps_up_to_memoized_for_free() {
        let (mut policy, handle) = memo_policy(&short_cfg());
        handle.seed_groups([1_000]);
        assert_eq!(policy.relevel_target(900), 1_000);
        assert_eq!(policy.relevel_target(1_000), 1_000, "already on a rung");
        assert_eq!(
            policy.relevel_target(2_000),
            2_000,
            "nothing above: minimum"
        );
        let s = handle.stats();
        assert_eq!(s.memoized_relevels, 2);
        assert_eq!(s.budget_spent, 0, "relevels never charge the ledger");
    }

    #[test]
    fn epochs_tick_per_shard_access_count() {
        let (mut policy, handle) = memo_policy(&short_cfg());
        for i in 0..(64 * 3) as u64 {
            policy.bump(i * 10);
        }
        assert_eq!(handle.stats().budget_epochs, 3);
        assert_eq!(handle.stats().budget_accesses, 192);
    }

    #[test]
    fn corrupt_all_then_scrub_then_reset_restores_seeded_ladder() {
        let (mut policy, handle) = memo_policy(&short_cfg());
        handle.seed_groups([1_000]);
        policy.bump(0); // conform once so the budget has state
        assert!(handle.corrupt_all() >= 8, "the whole group is poisoned");
        assert_eq!(policy.scrub(), handle.poisoned_entries());
        assert!(policy.scrub() > 0);

        policy.reset();
        assert_eq!(policy.scrub(), 0, "reset clears the poison");
        assert!(handle.probe(1_000), "the seeded ladder is back");
        let s = handle.stats();
        assert_eq!(s.budget_spent, 0, "the ledger restarts");
        assert_eq!(s.budget_accesses, 0);
        assert_eq!(
            s.conformed_writes, 1,
            "cumulative write history survives the reset"
        );
        // The reset state behaves exactly like a fresh seeded policy.
        let (mut fresh, fh) = memo_policy(&short_cfg());
        fh.seed_groups([1_000]);
        for current in [0u64, 1_000, 1_001, 5_000] {
            assert_eq!(policy.bump(current), fresh.bump(current));
        }
    }

    #[test]
    fn aggregation_folds_shards_commutatively() {
        let (mut p0, h0) = memo_policy(&short_cfg());
        let (mut p1, h1) = memo_policy(&short_cfg());
        h0.seed_groups([100]);
        p0.bump(0);
        p1.bump(0);
        p1.bump(10);
        let forward = aggregate_stats(&[h0.clone(), h1.clone()]);
        let backward = aggregate_stats(&[h1, h0]);
        assert_eq!(forward, backward);
        assert_eq!(forward.conformed_writes, 1);
        assert_eq!(forward.baseline_writes, 2);
        assert_eq!(forward.budget_accesses, 3);
        assert!(forward.budget_ok);
        assert_eq!(aggregate_stats(&[]).budget_accesses, 0);
        assert!(aggregate_stats(&[]).budget_ok);
    }
}
