//! RMCC — *Self-Reinforcing Memoization for Cryptography Calculations* —
//! the core contribution of the MICRO 2022 paper, reproduced as a library.
//!
//! Secure memories hide AES latency by caching write counters in the memory
//! controller, but irregular workloads miss that cache constantly. RMCC's
//! insight: unboundedly many counters can share one *value*, so memoize the
//! counter-only AES contribution per **value** — and steer counters toward
//! memoized values on every write so the table's coverage reinforces
//! itself.
//!
//! * [`table`] — the memoization table: 16 groups × 8 consecutive values,
//!   LFU replacement with shadow-tracked evicted groups, and 16 MRU single
//!   values (Figure 9).
//! * [`candidates`] — the high-counter-value monitor that inserts new
//!   groups above Max-Counter-in-Table (§IV-C3).
//! * [`budget`] — the 1%-per-epoch traffic-overhead budget with carry-over
//!   (§IV-C1).
//! * [`rmcc`] — the engine tying it together: read-path lookups and the
//!   memoization-aware counter update (§IV-B).
//! * [`area`] — the §IV-E hardware area model.
//! * [`security`] — the §IV-D birthday-bound and equation-counting
//!   analysis.
//!
//! # Example
//!
//! ```
//! use rmcc_core::rmcc::{Rmcc, RmccConfig};
//! use rmcc_secmem::counters::{CounterBlock, CounterOrg};
//!
//! let mut rmcc = Rmcc::new(RmccConfig::paper());
//! rmcc.seed_group(0, 20_000_000); // Figure 6's example value
//!
//! // A writeback conforms the block's counter to the memoized value…
//! let mut cb = CounterBlock::new(CounterOrg::Morphable128);
//! let out = rmcc.update_counter(0, &mut cb, 0, false).unwrap();
//! assert_eq!(out.new_value, 20_000_000);
//!
//! // …so the next read of that block hits the memoization table.
//! assert!(rmcc.lookup(0, 20_000_000).is_hit());
//! ```

#![forbid(unsafe_code)]
// Test code may use lossy casts freely; clippy.toml has no in-tests knob for them.
#![cfg_attr(test, allow(clippy::cast_possible_truncation))]
#![deny(missing_docs)]

pub mod area;
pub mod budget;
pub mod candidates;
pub mod rmcc;
pub mod security;
pub mod shard;
pub mod table;

pub use area::AreaModel;
pub use budget::{TrafficBudget, EPOCH_ACCESSES};
pub use candidates::{HighValueMonitor, COVERAGE_REQUIREMENT, HIGH_READ_TRIGGER};
pub use rmcc::{Rmcc, RmccConfig, UpdateOutcome, DEFAULT_LEVELS};
pub use shard::{
    aggregate_stats, memo_policy, MemoHandle, MemoPolicy, ShardMemoConfig, ShardMemoStats,
};
pub use table::{Group, LookupResult, MemoizationTable, TableConfig, TableStats};
