//! Security analysis helpers (§IV-D).
//!
//! RMCC's modified OTP calculation multiplies two AES outputs and truncates,
//! so identical pads *can* repeat by chance. The paper bounds the damage
//! with the birthday problem: across a machine's entire lifetime of 2^56
//! writebacks, roughly one machine in a hundred thousand ever sees a single
//! repeated pad. This module reproduces that arithmetic and the §IV-D1
//! equation-counting argument.

/// Bits in an OTP.
pub const OTP_BITS: u32 = 128;

/// Writebacks in the "unrealistically long" machine lifetime the paper
/// analyzes (a 56-bit counter exhausts at 2^56).
pub const LIFETIME_WRITEBACKS_LOG2: u32 = 56;

/// Probability that at least two of `2^n_log2` uniformly random `2^bits`-bit
/// values collide (birthday bound, exponential form):
/// `1 - exp(-n(n-1) / 2^(bits+1))`.
pub fn birthday_collision_probability(n_log2: u32, bits: u32) -> f64 {
    // ln of expected pair count: n(n-1)/2 / 2^bits ≈ 2^(2*n_log2 - 1 - bits).
    let exponent = 2.0 * n_log2 as f64 - 1.0 - bits as f64;
    let expected_pairs = 2f64.powf(exponent);
    -(-expected_pairs).exp_m1()
}

/// The paper's headline claim: the chance a machine sees any repeated OTP
/// during its lifetime — "only one in one hundred thousand machines".
pub fn otp_repeat_probability() -> f64 {
    birthday_collision_probability(LIFETIME_WRITEBACKS_LOG2, OTP_BITS)
}

/// §IV-D1's equation-counting argument: with `n_blocks` 64 B blocks (4
/// pads each), a known-plaintext attacker obtains `4n` equations of the
/// form `OTP = truncate(counter_AES × address_AES)` but faces `4n + 1`
/// unknowns even in the worst case where every block shares one counter
/// value. Returns `(equations, unknowns)`.
pub fn attack_equation_balance(n_blocks: u64) -> (u64, u64) {
    let equations = 4 * n_blocks;
    let unknowns = 4 * n_blocks + 1;
    (equations, unknowns)
}

/// Bits of information destroyed by the truncated multiplication: the
/// 256-bit product keeps only its middle 128 bits, so any attempt to invert
/// one equation must enumerate ~2^128 candidate factor pairs — as expensive
/// as brute-forcing AES-128 itself (§IV-D1).
pub const TRUNCATION_LOSS_BITS: u32 = 128;

/// Worst-case writebacks before key renewal under RMCC with the
/// Observed-System-Max clamp (§IV-D2): identical to SGX, because a new
/// memoized group never starts above `system_max + 1`, so the single
/// hottest block's counter still advances by one per writeback.
pub fn worst_case_writebacks_before_reboot() -> u64 {
    1u64 << LIFETIME_WRITEBACKS_LOG2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn otp_repeat_is_about_one_in_a_hundred_thousand() {
        let p = otp_repeat_probability();
        // 2^(2*56 - 1 - 128) = 2^-17 ≈ 7.6e-6.
        assert!(p > 5e-6 && p < 1e-5, "p = {p}");
    }

    #[test]
    fn birthday_bound_monotonicity() {
        // More samples → more collisions; more bits → fewer.
        assert!(birthday_collision_probability(57, 128) > birthday_collision_probability(56, 128));
        assert!(birthday_collision_probability(56, 130) < birthday_collision_probability(56, 128));
    }

    #[test]
    fn birthday_bound_saturates_at_one() {
        let p = birthday_collision_probability(80, 128);
        assert!(p > 0.99999 || p <= 1.0);
        assert!(p <= 1.0);
    }

    #[test]
    fn equations_never_catch_unknowns() {
        for n in [1u64, 100, 1 << 31] {
            let (eq, unk) = attack_equation_balance(n);
            assert!(unk > eq, "system must stay underdetermined");
            assert_eq!(unk - eq, 1);
        }
    }

    #[test]
    fn reboot_bound_matches_sgx() {
        assert_eq!(worst_case_writebacks_before_reboot(), 1 << 56);
    }
}
