//! The high-counter-value monitor (§IV-C3).
//!
//! Some counter blocks hold values above Max-Counter-in-Table, which
//! memoization-aware update can never reach (counters only increase). When
//! enough read requests (2 K per epoch) use such high values, RMCC inserts a
//! new Memoized Counter Value Group above the current maximum. The monitor
//! watches a ladder of candidate start values — `X+1+8i` for `i = 0..=16`
//! and `X+129+2^j` for `j = 4..=17`, where `X` is Max-Counter-in-Table —
//! and picks the smallest candidate that at least 98% of the epoch's
//! high-value reads fall below.

/// Reads above Max-Counter-in-Table per epoch that trigger an insertion.
pub const HIGH_READ_TRIGGER: u64 = 2_048;

/// Fraction of high-value reads a new group's start should exceed.
pub const COVERAGE_REQUIREMENT: f64 = 0.98;

/// Tracks high-value reads against the candidate ladder for one epoch.
///
/// # Examples
///
/// ```
/// use rmcc_core::candidates::HighValueMonitor;
///
/// let mut m = HighValueMonitor::new(100); // Max-Counter-in-Table = 100
/// for _ in 0..3000 {
///     m.observe(120); // reads far above the table
/// }
/// assert!(m.should_insert());
/// // 98% of high reads are below the candidate 100+1+8*3 = 125.
/// assert_eq!(m.select_start(u64::MAX), 125);
/// ```
#[derive(Debug, Clone)]
pub struct HighValueMonitor {
    /// Candidate start values, ascending.
    thresholds: Vec<u64>,
    /// `counts_below[k]` = high reads with value < `thresholds[k]`.
    counts_below: Vec<u64>,
    /// Total reads observed above Max-Counter-in-Table this epoch.
    high_reads: u64,
    /// The X the ladder was built from.
    base: u64,
}

impl HighValueMonitor {
    /// Builds the ladder over Max-Counter-in-Table `x`.
    pub fn new(x: u64) -> Self {
        let mut thresholds: Vec<u64> = (0..=16u64).map(|i| x + 1 + 8 * i).collect();
        thresholds.extend((4..=17u64).map(|j| x + 129 + (1 << j)));
        let n = thresholds.len();
        HighValueMonitor {
            thresholds,
            counts_below: vec![0; n],
            high_reads: 0,
            base: x,
        }
    }

    /// The Max-Counter-in-Table this ladder is relative to.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// High-value reads seen this epoch.
    pub fn high_reads(&self) -> u64 {
        self.high_reads
    }

    /// Records a read whose counter value exceeds Max-Counter-in-Table.
    pub fn observe(&mut self, value: u64) {
        debug_assert!(
            value > self.base,
            "monitor only sees values above the table max"
        );
        self.high_reads += 1;
        for (t, c) in self.thresholds.iter().zip(self.counts_below.iter_mut()) {
            if value < *t {
                *c += 1;
            }
        }
    }

    /// Whether enough high reads accumulated to justify a new group.
    pub fn should_insert(&self) -> bool {
        self.high_reads >= HIGH_READ_TRIGGER
    }

    /// Chooses the new group's start: the smallest candidate covering ≥98%
    /// of observed high reads, falling back to the largest candidate when
    /// even it covers less. The result is clamped to `system_max + 1`
    /// (§IV-D2) so the fastest-growing counter still advances by only one
    /// at a time in the worst case.
    #[allow(clippy::cast_possible_truncation)] // high_reads ≪ 2^53, ceil() is exact
    pub fn select_start(&self, system_max: u64) -> u64 {
        let need = (self.high_reads as f64 * COVERAGE_REQUIREMENT).ceil() as u64;
        let pick = self
            .thresholds
            .iter()
            .zip(self.counts_below.iter())
            .find(|(_, &c)| c >= need)
            .map(|(&t, _)| t)
            .or_else(|| self.thresholds.last().copied())
            // An empty ladder never occurs in practice; clamping below then
            // yields the most conservative start, `system_max + 1`.
            .unwrap_or(u64::MAX);
        pick.min(system_max.saturating_add(1))
    }

    /// Starts a fresh epoch over a (possibly new) table maximum.
    pub fn reset(&mut self, x: u64) {
        *self = HighValueMonitor::new(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_shape_matches_paper() {
        let m = HighValueMonitor::new(1000);
        assert_eq!(m.thresholds.len(), 17 + 14);
        assert_eq!(m.thresholds[0], 1001);
        assert_eq!(m.thresholds[16], 1000 + 1 + 128);
        assert_eq!(m.thresholds[17], 1000 + 129 + 16);
        assert_eq!(*m.thresholds.last().unwrap(), 1000 + 129 + (1 << 17));
        assert!(m.thresholds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn trigger_threshold() {
        let mut m = HighValueMonitor::new(0);
        for _ in 0..HIGH_READ_TRIGGER - 1 {
            m.observe(5);
        }
        assert!(!m.should_insert());
        m.observe(5);
        assert!(m.should_insert());
    }

    #[test]
    fn select_smallest_covering_candidate() {
        let mut m = HighValueMonitor::new(100);
        // 99% of reads at 110, 1% way out at 200 000.
        for _ in 0..990 {
            m.observe(110);
        }
        for _ in 0..10 {
            m.observe(200_000);
        }
        // Need 980 of 1000 below the pick: 110 < 111 = 100+1+8*2 is wrong —
        // 100+1+8*2 = 117 > 110; smallest candidate above 110 is 117.
        let start = m.select_start(u64::MAX);
        assert_eq!(start, 117);
    }

    #[test]
    fn falls_back_to_largest_candidate() {
        let mut m = HighValueMonitor::new(0);
        // Everything sits above the whole ladder.
        for _ in 0..100 {
            m.observe(10_000_000);
        }
        assert_eq!(m.select_start(u64::MAX), 129 + (1 << 17));
    }

    #[test]
    fn clamped_by_system_max() {
        let mut m = HighValueMonitor::new(100);
        for _ in 0..100 {
            m.observe(50_000);
        }
        assert_eq!(m.select_start(120), 121);
    }

    #[test]
    fn reset_rebuilds_ladder() {
        let mut m = HighValueMonitor::new(0);
        m.observe(3);
        m.reset(500);
        assert_eq!(m.base(), 500);
        assert_eq!(m.high_reads(), 0);
        assert_eq!(m.thresholds[0], 501);
    }
}
