//! Hardware area model (§IV-E).
//!
//! The paper accounts for RMCC's area as: a 4 KB SRAM memoization table
//! (128 entries × 32 B — a 16 B AES result for decryption plus a 16 B AES
//! result for verification each), 1 KB of tracking counters (64 × 16 B for
//! current groups, evicted groups, and candidates), and a truncated
//! 128×128→128 carry-less multiplier built from ~12 K XOR gates and ~16 K
//! inverters, equivalent to another ~4 KB of SRAM.

use crate::table::TableConfig;

/// Area accounting for one memoization table instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaModel {
    /// Bytes of SRAM for memoized AES results.
    pub table_bytes: u64,
    /// Bytes of SRAM for use-frequency / candidate tracking counters.
    pub tracking_bytes: u64,
    /// SRAM-equivalent bytes of the carry-less multiplier.
    pub clmul_equiv_bytes: u64,
    /// XOR gates in the multiplier tree.
    pub clmul_xor_gates: u64,
    /// Fan-out inverters in the multiplier tree.
    pub clmul_inverters: u64,
    /// Maximum XOR depth of the multiplier (log2 of the operand width).
    pub clmul_xor_depth: u32,
    /// Maximum inverter depth (log4 of the operand width).
    pub clmul_inv_depth: u32,
}

impl AreaModel {
    /// The paper's numbers for a given table geometry.
    pub fn for_table(cfg: TableConfig) -> Self {
        // Each memoized value stores two 16 B AES results (§IV-E:
        // "decryption and verification use different AES keys").
        let entries = cfg.total_entries();
        let table_bytes = entries * 32;
        // 64 16 B counters track group/evicted/candidate access rates.
        let trackers = (cfg.n_groups + cfg.n_evicted + 32) as u64;
        let tracking_bytes = trackers * 16;
        // 12 K XORs at 2 SRAM cells each + 16 K inverters at 0.5 each,
        // 1 cell ≈ 1 bit.
        let xor_gates = 12 * 1024;
        let inverters = 16 * 1024;
        let cells = xor_gates * 2 + inverters / 2;
        AreaModel {
            table_bytes,
            tracking_bytes,
            clmul_equiv_bytes: cells / 8,
            clmul_xor_gates: xor_gates,
            clmul_inverters: inverters,
            clmul_xor_depth: 128u32.ilog2(),
            clmul_inv_depth: 128u32.ilog2() / 2, // paper: log4(128) = 3
        }
    }

    /// Total SRAM-equivalent bytes for one table instance (the multiplier
    /// is shared across tables, so add it once).
    pub fn total_bytes(&self, include_multiplier: bool) -> u64 {
        self.table_bytes
            + self.tracking_bytes
            + if include_multiplier {
                self.clmul_equiv_bytes
            } else {
                0
            }
    }
}

impl std::fmt::Display for AreaModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "memoization table SRAM: {} B", self.table_bytes)?;
        writeln!(f, "tracking counters:      {} B", self.tracking_bytes)?;
        writeln!(
            f,
            "clmul ({} XOR, {} INV):  {} B SRAM-equivalent",
            self.clmul_xor_gates, self.clmul_inverters, self.clmul_equiv_bytes
        )?;
        write!(
            f,
            "gate depth: {} XOR + {} INV",
            self.clmul_xor_depth, self.clmul_inv_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let a = AreaModel::for_table(TableConfig::paper());
        assert_eq!(a.table_bytes, 4096, "4KB table (§IV-E)");
        assert_eq!(a.tracking_bytes, 1024, "1KB of 16B tracking counters");
        assert_eq!(a.clmul_equiv_bytes, 4096, "clmul ≈ 4KB SRAM");
        assert_eq!(a.clmul_xor_depth, 7, "log2(128) = 7 XOR deep");
        assert_eq!(a.clmul_inv_depth, 3, "log4(128) = 3 inverters deep (§IV-E)");
    }

    #[test]
    fn totals() {
        let a = AreaModel::for_table(TableConfig::paper());
        assert_eq!(a.total_bytes(true), 4096 + 1024 + 4096);
        assert_eq!(a.total_bytes(false), 4096 + 1024);
    }

    #[test]
    fn display_is_informative() {
        let s = AreaModel::for_table(TableConfig::paper()).to_string();
        assert!(s.contains("4096"));
        assert!(s.contains("XOR"));
    }
}
