//! The RMCC engine: memoization tables, candidate monitors, and traffic
//! budgets for every counter level, plus the memoization-aware counter
//! update decision procedure (§IV-B, §IV-C).
//!
//! The engine is the policy brain the memory controller consults:
//!
//! * on the **read path**, [`Rmcc::lookup`] answers whether a counter
//!   value's AES contribution is memoized (hiding the AES latency after a
//!   counter miss) and feeds the high-value monitor;
//! * on the **write path**, [`Rmcc::update_counter`] raises a counter to
//!   the nearest memoized value when that is free or affordable, falling
//!   back to the baseline `+1` when the budget is dry;
//! * every memory access ticks [`Rmcc::on_memory_access`], which rolls
//!   epochs: table reselection, monitor reset, budget replenishment.

use rmcc_secmem::counters::CounterBlock;

use crate::budget::TrafficBudget;
use crate::candidates::HighValueMonitor;
use crate::table::{LookupResult, MemoizationTable, TableConfig, TableStats};

/// Counter levels with their own tables (paper: L0 data counters and L1
/// tree counters, 128 entries each — Figure 8 / Table I).
pub const DEFAULT_LEVELS: usize = 2;

/// Relevels per epoch beyond which the DoS guard (§IV-D2) pauses
/// memoization-aware updates for the rest of the epoch: "after encountering
/// a large number of overflows in an epoch, RMCC can adaptively pause
/// memoization-aware counter update and revert to baseline".
pub const DOS_OVERFLOW_GUARD: u64 = 32_768;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmccConfig {
    /// Geometry of each level's memoization table.
    pub table: TableConfig,
    /// Per-level traffic-overhead budget fraction (paper: 1% each for L0
    /// and L1, a 2% total — §VI).
    pub budget_fraction: f64,
    /// Number of counter levels with tables.
    pub levels: usize,
    /// Whether read requests with unmemoized counters also receive
    /// memoization-aware updates (§IV-C1). Disable for ablation.
    pub read_triggered: bool,
    /// Memory accesses per budget epoch (paper:
    /// [`crate::budget::EPOCH_ACCESSES`]). Short telemetry runs shrink
    /// this so epoch-resolved series still cross boundaries.
    pub epoch_accesses: u64,
}

impl RmccConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        RmccConfig {
            table: TableConfig::paper(),
            budget_fraction: 0.01,
            levels: DEFAULT_LEVELS,
            read_triggered: true,
            epoch_accesses: crate::budget::EPOCH_ACCESSES,
        }
    }

    /// The paper's configuration with a different per-level budget
    /// (Figures 19/20 evaluate 1%, 2%, 8%).
    pub fn with_budget(budget_fraction: f64) -> Self {
        RmccConfig {
            budget_fraction,
            ..Self::paper()
        }
    }

    /// The paper's configuration with a different group size
    /// (Figures 21/22 evaluate 4, 8, 16).
    pub fn with_group_size(group_size: u64) -> Self {
        RmccConfig {
            table: TableConfig::with_group_size(group_size),
            ..Self::paper()
        }
    }
}

impl Default for RmccConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// What a counter update did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The counter's value after the update.
    pub new_value: u64,
    /// Whether the whole counter block releveled (the caller must model the
    /// re-encryption of every covered block).
    pub releveled: bool,
    /// Overhead requests charged to this level's budget by this update
    /// (zero when the update was free relative to the baseline policy).
    pub charged_requests: u64,
    /// Whether the new value is currently memoized in a live group.
    pub landed_on_memoized: bool,
}

/// Per-level state: table + high-value monitor.
#[derive(Debug, Clone)]
struct LevelState {
    table: MemoizationTable,
    monitor: HighValueMonitor,
}

/// The complete RMCC mechanism.
///
/// # Examples
///
/// ```
/// use rmcc_core::rmcc::{Rmcc, RmccConfig};
/// use rmcc_secmem::counters::{CounterBlock, CounterOrg};
///
/// let mut rmcc = Rmcc::new(RmccConfig::paper());
/// let mut cb = CounterBlock::new(CounterOrg::Morphable128);
///
/// // Bootstrap a group, then writes conform to memoized values.
/// rmcc.seed_group(0, 40);
/// let out = rmcc.update_counter(0, &mut cb, 3, false).expect("writebacks always update");
/// assert_eq!(out.new_value, 40);
/// assert!(out.landed_on_memoized);
/// ```
#[derive(Debug, Clone)]
pub struct Rmcc {
    cfg: RmccConfig,
    levels: Vec<LevelState>,
    budgets: Vec<TrafficBudget>,
    /// Observed-System-Max register mirror (fed by the caller on lookups).
    system_max: u64,
    /// Relevels seen this epoch, for the §IV-D2 DoS guard.
    epoch_relevels: u64,
    /// Set when the DoS guard tripped; cleared at the epoch boundary.
    dos_paused: bool,
}

impl Rmcc {
    /// Creates an engine with empty tables; groups bootstrap via the
    /// high-value monitors (or [`Rmcc::seed_group`]).
    pub fn new(cfg: RmccConfig) -> Self {
        assert!(cfg.levels >= 1, "at least one counter level");
        let levels = (0..cfg.levels)
            .map(|_| LevelState {
                table: MemoizationTable::new(cfg.table),
                monitor: HighValueMonitor::new(0),
            })
            .collect();
        let budgets = (0..cfg.levels)
            .map(|_| TrafficBudget::with_epoch(cfg.budget_fraction, cfg.epoch_accesses))
            .collect();
        Rmcc {
            cfg,
            levels,
            budgets,
            system_max: 0,
            epoch_relevels: 0,
            dos_paused: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> RmccConfig {
        self.cfg
    }

    /// Table statistics for `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` has no table.
    #[allow(clippy::indexing_slicing)] // documented panic contract
    pub fn table_stats(&self, level: usize) -> TableStats {
        // audit:allow(R1, reason = "level bounds are this accessor's documented panic contract")
        self.levels[level].table.stats()
    }

    /// The budget for `level` (read-only view).
    ///
    /// # Panics
    ///
    /// Panics if `level` has no table.
    #[allow(clippy::indexing_slicing)] // documented panic contract
    pub fn budget(&self, level: usize) -> &TrafficBudget {
        // audit:allow(R1, reason = "level bounds are this accessor's documented panic contract")
        &self.budgets[level]
    }

    /// Direct access to a level's table (diagnostics / Figure 15 coverage).
    ///
    /// # Panics
    ///
    /// Panics if `level` has no table.
    #[allow(clippy::indexing_slicing)] // documented panic contract
    pub fn table(&self, level: usize) -> &MemoizationTable {
        // audit:allow(R1, reason = "level bounds are this accessor's documented panic contract")
        &self.levels[level].table
    }

    /// Whether `level` has a memoization table (levels above
    /// `config().levels - 1` fall back to baseline behaviour).
    pub fn covers_level(&self, level: usize) -> bool {
        level < self.cfg.levels
    }

    /// Marks `value`'s memoized AES result at `level` as corrupted (fault
    /// injection). Returns `true` if live table state was actually hit; the
    /// next lookup of that value falls back to the full AES path and heals
    /// the entry (fail-safe memoization). Uncovered levels have no table and
    /// return `false`.
    pub fn corrupt_entry(&mut self, level: usize, value: u64) -> bool {
        self.levels
            .get_mut(level)
            .is_some_and(|lvl| lvl.table.corrupt_entry(value))
    }

    /// Manually seeds a group (tests and warm-started experiments). Levels
    /// without a table ignore the seed.
    pub fn seed_group(&mut self, level: usize, start: u64) {
        if let Some(lvl) = self.levels.get_mut(level) {
            lvl.table.insert_group(start);
            let max = lvl.table.max_counter_in_table().unwrap_or(0);
            lvl.monitor.reset(max);
        }
    }

    /// Records one memory access (any kind). Rolls budget epochs and runs
    /// end-of-epoch table reselection + monitor reset when a boundary is
    /// crossed. Call exactly once per memory request the MC services.
    /// Returns `true` when an epoch boundary was crossed, so callers can
    /// snapshot epoch-resolved telemetry in lockstep with the budget.
    pub fn on_memory_access(&mut self) -> bool {
        let mut boundary = false;
        for b in &mut self.budgets {
            boundary |= b.on_access();
        }
        if boundary {
            self.epoch_relevels = 0;
            self.dos_paused = false;
            for lvl in &mut self.levels {
                let candidate = if lvl.monitor.should_insert() {
                    Some(lvl.monitor.select_start(self.system_max))
                } else {
                    None
                };
                lvl.table.epoch_reselect(candidate);
                let max = lvl.table.max_counter_in_table().unwrap_or(0);
                lvl.monitor.reset(max);
            }
        }
        boundary
    }

    /// Whether the §IV-D2 DoS guard is currently pausing memoization-aware
    /// updates (an attacker manipulating counters to force overflow storms
    /// makes RMCC revert to the baseline policy for the rest of the epoch).
    pub fn dos_paused(&self) -> bool {
        self.dos_paused
    }

    fn note_relevel(&mut self) {
        // Saturating: the guard trips long before the count nears the limit.
        self.epoch_relevels = self.epoch_relevels.saturating_add(1);
        if self.epoch_relevels >= DOS_OVERFLOW_GUARD {
            self.dos_paused = true;
        }
    }

    /// Updates the engine's mirror of the Observed-System-Max register
    /// (§IV-D2); new memoized groups never start above `system_max + 1`.
    pub fn note_system_max(&mut self, system_max: u64) {
        self.system_max = self.system_max.max(system_max);
    }

    /// The current Observed-System-Max register value. Monotonically
    /// non-decreasing over a run — telemetry records it each epoch and the
    /// property suite checks the monotonicity.
    pub fn observed_system_max(&self) -> u64 {
        self.system_max
    }

    /// Read-path lookup: is `value`'s counter-only AES result memoized at
    /// `level`? Also feeds the high-value monitor and performs mid-epoch
    /// group insertion after 2 K high reads (§IV-C3).
    ///
    /// Levels without a table always miss.
    pub fn lookup(&mut self, level: usize, value: u64) -> LookupResult {
        let Some(lvl) = self.levels.get_mut(level) else {
            return LookupResult::Miss;
        };
        let result = lvl.table.lookup(value);
        let max_in_table = lvl.table.max_counter_in_table().unwrap_or(0);
        if value > max_in_table {
            if lvl.monitor.base() != max_in_table {
                lvl.monitor.reset(max_in_table);
            }
            lvl.monitor.observe(value);
            if lvl.monitor.should_insert() {
                let start = lvl.monitor.select_start(self.system_max);
                lvl.table.insert_group(start);
                let new_max = lvl.table.max_counter_in_table().unwrap_or(0);
                lvl.monitor.reset(new_max);
            }
        }
        result
    }

    /// Memoization-aware counter update (§IV-B, §IV-C2) for the counter in
    /// `slot` of `cb` at `level`.
    ///
    /// Decision procedure:
    /// 1. Prefer the nearest memoized value above the current one.
    /// 2. If that jump would overflow the block while the baseline `+1`
    ///    would not, the relevel is charged to the budget
    ///    (`2 × coverage` requests); with insufficient budget, fall back
    ///    to `+1`.
    /// 3. If even `+1` overflows, relevel — for free — to the nearest
    ///    memoized value at or above the forced target.
    ///
    /// `read_triggered` marks updates for read requests whose counters
    /// missed the table (§IV-C1); those pay 2 requests of overhead
    /// (re-encrypt + writeback) up front and are skipped when the budget
    /// is dry.
    ///
    /// Returns `None` only for read-triggered updates that were declined.
    pub fn update_counter(
        &mut self,
        level: usize,
        cb: &mut CounterBlock,
        slot: usize,
        read_triggered: bool,
    ) -> Option<UpdateOutcome> {
        let coverage = cb.org().coverage() as u64;
        let current = cb.value(slot);
        let baseline = current + 1;
        // The DoS guard reverts to the baseline policy for the rest of the
        // epoch (§IV-D2); forced relevels below still steer to memoized
        // values, which costs nothing either way.
        let memo_target = if self.dos_paused {
            None
        } else {
            self.levels
                .get(level)
                .and_then(|lvl| lvl.table.nearest_memoized_above(current))
        };

        // Read-triggered updates are pure overhead: gate them up front.
        let read_cost = 2u64;
        if read_triggered {
            if !self.cfg.read_triggered || self.dos_paused {
                return None;
            }
            // Nothing to conform to → no point paying.
            let target = memo_target?;
            if !cb.can_write(slot, target) {
                // A read-triggered relevel is too aggressive; skip.
                return None;
            }
            let charged = self
                .budgets
                .get_mut(level)
                .is_some_and(|b| b.try_consume(read_cost));
            if !charged {
                return None;
            }
            #[allow(clippy::expect_used)]
            // audit:allow(R1, reason = "can_write verified above makes this write infallible")
            cb.try_write(slot, target).expect("can_write verified");
            return Some(UpdateOutcome {
                new_value: target,
                releveled: false,
                charged_requests: read_cost,
                landed_on_memoized: true,
            });
        }

        let baseline_fits = cb.can_write(slot, baseline);
        if let Some(target) = memo_target {
            if cb.can_write(slot, target) {
                // Free: one writeback either way.
                #[allow(clippy::expect_used)]
                // audit:allow(R1, reason = "can_write verified above makes this write infallible")
                cb.try_write(slot, target).expect("can_write verified");
                return Some(UpdateOutcome {
                    new_value: target,
                    releveled: false,
                    charged_requests: 0,
                    landed_on_memoized: true,
                });
            }
            if baseline_fits {
                // The jump needs a relevel the baseline would avoid: charge
                // the re-encryption traffic (read + write per covered block).
                let cost = 2 * coverage;
                let charged = self
                    .budgets
                    .get_mut(level)
                    .is_some_and(|b| b.try_consume(cost));
                if charged {
                    let min_target = cb.max_value() + 1;
                    let relevel_to = self.relevel_target(level, min_target);
                    cb.relevel(relevel_to);
                    self.note_relevel();
                    return Some(UpdateOutcome {
                        new_value: relevel_to,
                        releveled: true,
                        charged_requests: cost,
                        landed_on_memoized: self.is_memoized(level, relevel_to),
                    });
                }
                // Budget dry: baseline behaviour.
                #[allow(clippy::expect_used)]
                // audit:allow(R1, reason = "baseline_fits verified above makes this write infallible")
                cb.try_write(slot, baseline).expect("baseline fits");
                return Some(UpdateOutcome {
                    new_value: baseline,
                    releveled: false,
                    charged_requests: 0,
                    landed_on_memoized: self.is_memoized(level, baseline),
                });
            }
            // Both overflow: the relevel is forced anyway; steering it to a
            // memoized value costs nothing extra (§IV-C2).
            let min_target = cb.max_value() + 1;
            let relevel_to = self.relevel_target(level, min_target);
            cb.relevel(relevel_to);
            self.note_relevel();
            return Some(UpdateOutcome {
                new_value: relevel_to,
                releveled: true,
                charged_requests: 0,
                landed_on_memoized: self.is_memoized(level, relevel_to),
            });
        }

        // No memoized value above: baseline policy.
        if baseline_fits {
            #[allow(clippy::expect_used)]
            // audit:allow(R1, reason = "baseline_fits verified above makes this write infallible")
            cb.try_write(slot, baseline).expect("baseline fits");
            Some(UpdateOutcome {
                new_value: baseline,
                releveled: false,
                charged_requests: 0,
                landed_on_memoized: self.is_memoized(level, baseline),
            })
        } else {
            let min_target = cb.max_value() + 1;
            let relevel_to = self.relevel_target(level, min_target);
            cb.relevel(relevel_to);
            self.note_relevel();
            Some(UpdateOutcome {
                new_value: relevel_to,
                releveled: true,
                charged_requests: 0,
                landed_on_memoized: self.is_memoized(level, relevel_to),
            })
        }
    }

    /// The relevel target: the nearest memoized value ≥ `min_target`, or
    /// `min_target` itself when nothing suitable is memoized.
    fn relevel_target(&self, level: usize, min_target: u64) -> u64 {
        let memoized = self.levels.get(level).and_then(|lvl| {
            lvl.table
                .nearest_memoized_above(min_target.saturating_sub(1))
        });
        match memoized {
            Some(t) if t >= min_target => t,
            _ => min_target,
        }
    }

    fn is_memoized(&self, level: usize, value: u64) -> bool {
        self.levels
            .get(level)
            .is_some_and(|lvl| lvl.table.probe(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmcc_secmem::counters::CounterOrg;

    #[test]
    fn lookup_without_groups_misses_and_bootstraps() {
        let mut r = Rmcc::new(RmccConfig::paper());
        r.note_system_max(200_000);
        // 2 K high-value reads trigger a group insertion.
        for _ in 0..crate::candidates::HIGH_READ_TRIGGER {
            assert_eq!(r.lookup(0, 100_000), LookupResult::Miss);
        }
        assert!(
            r.table(0).max_counter_in_table().is_some(),
            "monitor must bootstrap a group"
        );
        // The inserted group sits above the hot value but within the ladder.
        let max = r.table(0).max_counter_in_table().unwrap();
        assert!(
            max > 100_000,
            "group must land above the hot values, got {max}"
        );
    }

    #[test]
    fn writes_conform_to_memoized_values() {
        let mut r = Rmcc::new(RmccConfig::paper());
        r.seed_group(0, 100);
        let mut cb = CounterBlock::new(CounterOrg::Morphable128);
        let out = r.update_counter(0, &mut cb, 0, false).unwrap();
        assert_eq!(out.new_value, 100);
        assert!(out.landed_on_memoized);
        assert_eq!(out.charged_requests, 0, "encodable jumps are free");
        // Consecutive writes walk the group (Figure 7).
        let out = r.update_counter(0, &mut cb, 0, false).unwrap();
        assert_eq!(out.new_value, 101);
    }

    #[test]
    fn sc64_jump_needs_budget() {
        let mut r = Rmcc::new(RmccConfig::paper());
        r.seed_group(0, 1_000); // far beyond a 7-bit minor
        let mut cb = CounterBlock::new(CounterOrg::Sc64);
        let out = r.update_counter(0, &mut cb, 0, false).unwrap();
        // The jump forces a relevel baseline would avoid → charged.
        assert!(out.releveled);
        assert_eq!(out.charged_requests, 2 * 64);
        assert_eq!(out.new_value, 1_000);
        assert_eq!(cb.value(5), 1_000, "relevel moves every slot");
    }

    #[test]
    fn dry_budget_falls_back_to_baseline() {
        let mut r = Rmcc::new(RmccConfig::with_budget(0.0));
        r.seed_group(0, 1_000);
        let mut cb = CounterBlock::new(CounterOrg::Sc64);
        let out = r.update_counter(0, &mut cb, 0, false).unwrap();
        assert!(!out.releveled);
        assert_eq!(out.new_value, 1);
        assert_eq!(out.charged_requests, 0);
    }

    #[test]
    fn forced_overflow_relevels_to_memoized_for_free() {
        let mut r = Rmcc::new(RmccConfig::with_budget(0.0));
        r.seed_group(0, 1_000);
        let mut cb = CounterBlock::new(CounterOrg::Sc64);
        // Exhaust the minor range so even +1 overflows.
        for v in 1..=127 {
            cb.try_write(0, v).unwrap();
        }
        let out = r.update_counter(0, &mut cb, 0, false).unwrap();
        assert!(out.releveled);
        assert_eq!(out.charged_requests, 0, "forced relevels are free");
        assert_eq!(out.new_value, 1_000, "steered to the memoized value");
        assert!(out.landed_on_memoized);
    }

    #[test]
    fn no_memoized_value_means_baseline() {
        let mut r = Rmcc::new(RmccConfig::paper());
        let mut cb = CounterBlock::new(CounterOrg::Morphable128);
        let out = r.update_counter(0, &mut cb, 0, false).unwrap();
        assert_eq!(out.new_value, 1);
        assert!(!out.landed_on_memoized);
    }

    #[test]
    fn read_triggered_updates_respect_budget() {
        let mut r = Rmcc::new(RmccConfig::paper());
        r.seed_group(0, 50);
        let mut cb = CounterBlock::new(CounterOrg::Morphable128);
        let out = r.update_counter(0, &mut cb, 0, true).unwrap();
        assert_eq!(out.new_value, 50);
        assert_eq!(out.charged_requests, 2);
        // Drain the budget; further read-triggered updates decline.
        while r.budgets[0].try_consume(100) {}
        while r.budgets[0].try_consume(1) {}
        let mut cb2 = CounterBlock::new(CounterOrg::Morphable128);
        assert!(r.update_counter(0, &mut cb2, 0, true).is_none());
        assert_eq!(cb2.value(0), 0, "declined update leaves the counter alone");
    }

    #[test]
    fn read_triggered_never_relevels() {
        let mut r = Rmcc::new(RmccConfig::paper());
        r.seed_group(0, 1_000);
        let mut cb = CounterBlock::new(CounterOrg::Sc64); // jump would relevel
        assert!(r.update_counter(0, &mut cb, 0, true).is_none());
    }

    #[test]
    fn uncovered_levels_use_baseline() {
        let mut r = Rmcc::new(RmccConfig {
            levels: 1,
            ..RmccConfig::paper()
        });
        assert!(!r.covers_level(1));
        assert_eq!(r.lookup(1, 42), LookupResult::Miss);
        let mut cb = CounterBlock::new(CounterOrg::Morphable128);
        let out = r.update_counter(1, &mut cb, 0, false).unwrap();
        assert_eq!(out.new_value, 1);
    }

    #[test]
    fn corrupted_entry_is_never_served_and_heals() {
        let mut r = Rmcc::new(RmccConfig::paper());
        r.seed_group(0, 100);
        assert_eq!(r.lookup(0, 100), LookupResult::GroupHit);
        assert!(r.corrupt_entry(0, 100));
        // Fail-safe: full AES path, counted, never the corrupted result.
        assert_eq!(r.lookup(0, 100), LookupResult::Miss);
        assert_eq!(r.table_stats(0).fallbacks, 1);
        // Healed by the recompute.
        assert_eq!(r.lookup(0, 100), LookupResult::GroupHit);
        // Uncovered levels have nothing to corrupt.
        assert!(!r.corrupt_entry(5, 100));
    }

    #[test]
    fn epoch_boundary_runs_reselection() {
        let mut r = Rmcc::new(RmccConfig::paper());
        r.seed_group(0, 10);
        for _ in 0..crate::budget::EPOCH_ACCESSES {
            r.on_memory_access();
        }
        assert_eq!(r.budget(0).epochs(), 1);
        assert!(r.table(0).max_counter_in_table().is_some());
    }

    #[test]
    fn self_reinforcement_converges_counters() {
        // Figure 6's dynamic: scattered counters conform to the table over
        // repeated writebacks.
        let mut r = Rmcc::new(RmccConfig::paper());
        r.seed_group(0, 100_000);
        let mut blocks: Vec<CounterBlock> = (0..32)
            .map(|i| {
                CounterBlock::with_state(CounterOrg::Morphable128, 50_000 + i * 1_000, vec![0; 128])
            })
            .collect();
        for cb in &mut blocks {
            for slot in 0..128 {
                let _ = r.update_counter(0, cb, slot, false);
            }
        }
        let memoized = blocks
            .iter()
            .flat_map(|cb| cb.values())
            .filter(|&v| r.table(0).probe(v))
            .count();
        let total = blocks.len() * 128;
        assert!(
            memoized as f64 / total as f64 > 0.9,
            "only {memoized}/{total} conformed"
        );
    }
}

#[cfg(test)]
mod dos_guard_tests {
    use super::*;
    use rmcc_secmem::counters::CounterOrg;

    #[test]
    fn overflow_storm_trips_the_guard() {
        let mut r = Rmcc::new(RmccConfig::paper());
        r.seed_group(0, 10_000_000);
        assert!(!r.dos_paused());
        // An attacker forces relevels by hammering blocks whose jumps
        // always overflow; budget is huge so charged relevels flow.
        let mut cfg = RmccConfig::paper();
        cfg.budget_fraction = 10.0; // effectively unlimited for the test
        let mut r = Rmcc::new(cfg);
        r.seed_group(0, 10_000_000);
        for _ in 0..DOS_OVERFLOW_GUARD {
            let mut cb = CounterBlock::new(CounterOrg::Sc64);
            let out = r.update_counter(0, &mut cb, 0, false).unwrap();
            assert!(out.releveled);
        }
        assert!(r.dos_paused(), "guard must trip after an overflow storm");
        // While paused, updates revert to baseline +1.
        let mut cb = CounterBlock::new(CounterOrg::Sc64);
        let out = r.update_counter(0, &mut cb, 0, false).unwrap();
        assert_eq!(out.new_value, 1);
        assert!(!out.releveled);
    }

    #[test]
    fn guard_clears_at_epoch_boundary() {
        let mut cfg = RmccConfig::paper();
        cfg.budget_fraction = 10.0;
        let mut r = Rmcc::new(cfg);
        r.seed_group(0, 10_000_000);
        for _ in 0..DOS_OVERFLOW_GUARD {
            let mut cb = CounterBlock::new(CounterOrg::Sc64);
            let _ = r.update_counter(0, &mut cb, 0, false);
        }
        assert!(r.dos_paused());
        for _ in 0..crate::budget::EPOCH_ACCESSES {
            r.on_memory_access();
        }
        assert!(!r.dos_paused(), "guard must clear each epoch");
    }
}
