//! The per-epoch traffic-overhead budget (§IV-C1/§IV-C2).
//!
//! RMCC's extra traffic — read-triggered counter updates for read-mostly
//! blocks and the additional overflows its value jumps can cause — is capped
//! at a fraction (default 1%) of memory traffic per epoch of 1,000,000
//! memory accesses. Leftover budget carries over to the next epoch. When
//! the budget runs dry, RMCC falls back to the baseline update policy for
//! the rest of the epoch, except on writes that would overflow anyway
//! (releveling to a memoized value there costs nothing extra).

/// Memory accesses per budget epoch (paper: 1,000,000). Short-running
/// simulations may shrink the epoch via [`TrafficBudget::with_epoch`] so
/// that epoch-resolved telemetry still sees multiple boundaries.
pub const EPOCH_ACCESSES: u64 = 1_000_000;

/// Fractional bits of the fixed-point ledger. The budget accumulates in
/// integer units of 2^-32 requests so that carry-over across epochs is
/// exact: repeated `available += allowance` in `f64` drifts once the
/// allowance has a non-terminating binary fraction, and over enough epochs
/// the drift can grant (or withhold) whole requests.
const FP_BITS: u32 = 32;

/// One request in fixed-point ledger units.
const FP_ONE: u128 = 1 << FP_BITS;

/// Converts a non-negative request count (possibly fractional) into
/// fixed-point ledger units. Performed once per budget at construction;
/// every subsequent ledger operation is exact integer arithmetic.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // rounded non-negative finite value; `as` saturates
fn to_fixed_point(requests: f64) -> u128 {
    (requests * FP_ONE as f64).round() as u128
}

/// Converts fixed-point ledger units back to (fractional) requests for
/// reporting.
#[allow(clippy::cast_precision_loss)] // reporting only; the ledger stays integral
fn from_fixed_point(units: u128) -> f64 {
    units as f64 / FP_ONE as f64
}

/// A replenishing traffic budget.
///
/// All quantities are in units of 64 B memory requests.
///
/// # Examples
///
/// ```
/// use rmcc_core::budget::TrafficBudget;
///
/// let mut b = TrafficBudget::new(0.01); // 1% of traffic
/// // A fresh budget grants one epoch's allowance up front.
/// assert!(b.try_consume(100));
/// assert!(!b.try_consume(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficBudget {
    /// Fraction of per-epoch traffic grantable as overhead (reporting
    /// only; the ledger below never touches it after construction).
    fraction: f64,
    /// Accesses per epoch (paper: [`EPOCH_ACCESSES`]).
    epoch_accesses: u64,
    /// Fresh allowance granted at each epoch boundary, fixed-point.
    allowance_fp: u128,
    /// Requests still grantable, fixed-point.
    available_fp: u128,
    /// Accesses seen in the current epoch.
    epoch_progress: u64,
    /// Total overhead requests ever granted.
    total_spent: u64,
    /// Overhead requests granted in the current epoch.
    epoch_spent: u64,
    /// Leftover budget carried into the current epoch at its boundary,
    /// fixed-point.
    carry_over_fp: u128,
    /// Total accesses ever observed.
    total_accesses: u64,
    /// Completed epochs.
    epochs: u64,
}

impl TrafficBudget {
    /// Creates a budget granting `fraction` of each epoch's accesses,
    /// with the first epoch's allowance immediately available.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    pub fn new(fraction: f64) -> Self {
        Self::with_epoch(fraction, EPOCH_ACCESSES)
    }

    /// Like [`TrafficBudget::new`] but with a custom epoch length in
    /// accesses (tests and short telemetry runs; the paper uses
    /// [`EPOCH_ACCESSES`]).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite, or if
    /// `epoch_accesses` is zero.
    pub fn with_epoch(fraction: f64, epoch_accesses: u64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "fraction must be non-negative"
        );
        assert!(epoch_accesses > 0, "epoch must span at least one access");
        #[allow(clippy::cast_precision_loss)] // one-time allowance sizing
        let allowance_fp = to_fixed_point(fraction * epoch_accesses as f64);
        TrafficBudget {
            fraction,
            epoch_accesses,
            allowance_fp,
            available_fp: allowance_fp,
            epoch_progress: 0,
            total_spent: 0,
            epoch_spent: 0,
            carry_over_fp: 0,
            total_accesses: 0,
            epochs: 0,
        }
    }

    /// The configured overhead fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Accesses per epoch.
    pub fn epoch_accesses(&self) -> u64 {
        self.epoch_accesses
    }

    /// The fresh allowance granted at each epoch boundary, in requests.
    pub fn allowance(&self) -> f64 {
        from_fixed_point(self.allowance_fp)
    }

    /// Overhead requests granted so far in the current epoch. Together with
    /// [`Self::carry_over`] this is the telemetry invariant:
    /// `epoch_spent <= allowance + carry_over` at all times — see
    /// [`Self::invariant_holds`] for the exact integer form.
    pub fn epoch_spent(&self) -> u64 {
        self.epoch_spent
    }

    /// Leftover budget that carried into the current epoch at its boundary
    /// (zero during the first epoch: nothing has carried yet).
    pub fn carry_over(&self) -> f64 {
        from_fixed_point(self.carry_over_fp)
    }

    /// Requests currently grantable.
    pub fn available(&self) -> f64 {
        from_fixed_point(self.available_fp)
    }

    /// The budget invariant, checked in exact fixed-point arithmetic with
    /// no floating-point tolerance: overhead granted within an epoch never
    /// exceeds the fresh allowance plus what carried in at the boundary.
    pub fn invariant_holds(&self) -> bool {
        u128::from(self.epoch_spent) << FP_BITS
            <= self.allowance_fp.saturating_add(self.carry_over_fp)
    }

    /// Total overhead requests granted over the run.
    pub fn total_spent(&self) -> u64 {
        self.total_spent
    }

    /// Total memory accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Realized overhead as a fraction of all observed accesses.
    pub fn realized_overhead(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_spent as f64 / self.total_accesses as f64
        }
    }

    /// Records one memory access; every `epoch_accesses`-th access rolls
    /// the epoch and replenishes the budget (carrying leftover forward).
    /// Returns `true` when an epoch boundary was crossed — the caller runs
    /// its end-of-epoch maintenance (table reselection) then.
    pub fn on_access(&mut self) -> bool {
        self.total_accesses += 1;
        // Saturating: progress resets every epoch and epochs is monotone, so
        // neither can approach u64::MAX in any realistic run.
        self.epoch_progress = self.epoch_progress.saturating_add(1);
        if self.epoch_progress >= self.epoch_accesses {
            self.epoch_progress = 0;
            self.epochs = self.epochs.saturating_add(1);
            // Carry-over: leftover adds to the new allowance (§IV-C1).
            // Integer ledger units, so the carry is exact at any epoch count.
            self.carry_over_fp = self.available_fp;
            self.epoch_spent = 0;
            self.available_fp = self.available_fp.saturating_add(self.allowance_fp);
            true
        } else {
            false
        }
    }

    /// Completed epochs so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Attempts to spend `requests` of overhead traffic; `false` (and no
    /// spend) if the remaining budget cannot cover it.
    pub fn try_consume(&mut self, requests: u64) -> bool {
        let requests_fp = u128::from(requests) << FP_BITS;
        if self.available_fp >= requests_fp {
            self.available_fp -= requests_fp;
            self.total_spent = self.total_spent.saturating_add(requests);
            // Saturating: resets every epoch, cannot approach u64::MAX.
            self.epoch_spent = self.epoch_spent.saturating_add(requests);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_allowance_and_exhaustion() {
        let mut b = TrafficBudget::new(0.01);
        assert!((b.available() - 10_000.0).abs() < 1e-9);
        assert!(b.try_consume(10_000));
        assert!(!b.try_consume(1));
        assert_eq!(b.total_spent(), 10_000);
    }

    #[test]
    fn replenishes_each_epoch_with_carry_over() {
        let mut b = TrafficBudget::new(0.01);
        assert!(b.try_consume(9_000)); // leave 1 000
        let mut boundaries = 0;
        for _ in 0..EPOCH_ACCESSES {
            if b.on_access() {
                boundaries += 1;
            }
        }
        assert_eq!(boundaries, 1);
        assert_eq!(b.epochs(), 1);
        // 1 000 leftover + 10 000 fresh.
        assert!((b.available() - 11_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_fraction_grants_nothing() {
        let mut b = TrafficBudget::new(0.0);
        assert!(!b.try_consume(1));
        assert!(b.try_consume(0));
    }

    #[test]
    fn realized_overhead_tracks_ratio() {
        let mut b = TrafficBudget::new(0.08);
        for _ in 0..1000 {
            b.on_access();
        }
        b.try_consume(20);
        assert!((b.realized_overhead() - 0.02).abs() < 1e-12);
        assert_eq!(TrafficBudget::new(0.01).realized_overhead(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_fraction_panics() {
        let _ = TrafficBudget::new(-0.5);
    }

    #[test]
    fn epoch_spent_and_carry_over_track_boundaries() {
        let mut b = TrafficBudget::with_epoch(0.01, 1_000); // allowance 10
        assert_eq!(b.epoch_accesses(), 1_000);
        assert!((b.allowance() - 10.0).abs() < 1e-12);
        assert!(b.try_consume(4));
        assert_eq!(b.epoch_spent(), 4);
        assert_eq!(b.carry_over(), 0.0, "nothing carried before epoch 1");
        let mut boundaries = 0;
        for _ in 0..1_000 {
            if b.on_access() {
                boundaries += 1;
            }
        }
        assert_eq!(boundaries, 1);
        // 6 left over carried in; per-epoch spend reset.
        assert!((b.carry_over() - 6.0).abs() < 1e-12);
        assert_eq!(b.epoch_spent(), 0);
        assert!((b.available() - 16.0).abs() < 1e-12);
        // The telemetry invariant: spend never exceeds allowance + carry,
        // checked exactly — no epsilon.
        assert!(b.try_consume(16));
        assert!(!b.try_consume(1));
        assert!(b.invariant_holds());
    }

    #[test]
    fn fractional_allowance_carries_exactly() {
        // Allowance 2.5 requests/epoch: the half-request remainder must
        // accumulate without floating-point drift, affording exactly five
        // requests every two epochs at any epoch count.
        let mut b = TrafficBudget::with_epoch(0.5, 5);
        let mut granted = 0u64;
        for epoch in 1..=10_000u64 {
            while b.try_consume(1) {
                granted += 1;
            }
            assert!(b.invariant_holds(), "invariant broke in epoch {epoch}");
            for _ in 0..5 {
                b.on_access();
            }
            // After `epoch` epochs the ledger has granted floor(2.5 * epoch).
            assert_eq!(granted, epoch * 5 / 2, "drift after {epoch} epochs");
        }
    }

    #[test]
    fn non_dyadic_allowance_never_drifts() {
        // 0.1 has no finite binary expansion; the fixed-point ledger
        // quantizes it once at construction and then stays exact: after any
        // number of unspent epochs the affordable request count is the
        // floor of (epochs + 1) times the quantized allowance.
        let mut b = TrafficBudget::with_epoch(0.1, 1);
        for _ in 0..99_999 {
            b.on_access();
        }
        // 100_000 allowances of round(0.1 * 2^32) / 2^32 requests each.
        assert!(b.try_consume(10_000));
        assert!(!b.try_consume(1));
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn zero_length_epoch_panics() {
        let _ = TrafficBudget::with_epoch(0.01, 0);
    }

    #[test]
    fn failed_consume_does_not_spend() {
        let mut b = TrafficBudget::new(0.01);
        let before = b.available();
        assert!(!b.try_consume(1_000_000));
        assert!((b.available() - before).abs() < 1e-12);
        assert_eq!(b.total_spent(), 0);
    }
}
