//! The per-epoch traffic-overhead budget (§IV-C1/§IV-C2).
//!
//! RMCC's extra traffic — read-triggered counter updates for read-mostly
//! blocks and the additional overflows its value jumps can cause — is capped
//! at a fraction (default 1%) of memory traffic per epoch of 1,000,000
//! memory accesses. Leftover budget carries over to the next epoch. When
//! the budget runs dry, RMCC falls back to the baseline update policy for
//! the rest of the epoch, except on writes that would overflow anyway
//! (releveling to a memoized value there costs nothing extra).

/// Memory accesses per budget epoch (paper: 1,000,000). Short-running
/// simulations may shrink the epoch via [`TrafficBudget::with_epoch`] so
/// that epoch-resolved telemetry still sees multiple boundaries.
pub const EPOCH_ACCESSES: u64 = 1_000_000;

/// A replenishing traffic budget.
///
/// All quantities are in units of 64 B memory requests.
///
/// # Examples
///
/// ```
/// use rmcc_core::budget::TrafficBudget;
///
/// let mut b = TrafficBudget::new(0.01); // 1% of traffic
/// // A fresh budget grants one epoch's allowance up front.
/// assert!(b.try_consume(100));
/// assert!(!b.try_consume(1_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficBudget {
    /// Fraction of per-epoch traffic grantable as overhead.
    fraction: f64,
    /// Accesses per epoch (paper: [`EPOCH_ACCESSES`]).
    epoch_accesses: u64,
    /// Requests still grantable.
    available: f64,
    /// Accesses seen in the current epoch.
    epoch_progress: u64,
    /// Total overhead requests ever granted.
    total_spent: u64,
    /// Overhead requests granted in the current epoch.
    epoch_spent: u64,
    /// Leftover budget carried into the current epoch at its boundary.
    carry_over: f64,
    /// Total accesses ever observed.
    total_accesses: u64,
    /// Completed epochs.
    epochs: u64,
}

impl TrafficBudget {
    /// Creates a budget granting `fraction` of each epoch's accesses,
    /// with the first epoch's allowance immediately available.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    pub fn new(fraction: f64) -> Self {
        Self::with_epoch(fraction, EPOCH_ACCESSES)
    }

    /// Like [`TrafficBudget::new`] but with a custom epoch length in
    /// accesses (tests and short telemetry runs; the paper uses
    /// [`EPOCH_ACCESSES`]).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite, or if
    /// `epoch_accesses` is zero.
    pub fn with_epoch(fraction: f64, epoch_accesses: u64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "fraction must be non-negative"
        );
        assert!(epoch_accesses > 0, "epoch must span at least one access");
        TrafficBudget {
            fraction,
            epoch_accesses,
            available: fraction * epoch_accesses as f64,
            epoch_progress: 0,
            total_spent: 0,
            epoch_spent: 0,
            carry_over: 0.0,
            total_accesses: 0,
            epochs: 0,
        }
    }

    /// The configured overhead fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Accesses per epoch.
    pub fn epoch_accesses(&self) -> u64 {
        self.epoch_accesses
    }

    /// The fresh allowance granted at each epoch boundary, in requests.
    pub fn allowance(&self) -> f64 {
        self.fraction * self.epoch_accesses as f64
    }

    /// Overhead requests granted so far in the current epoch. Together with
    /// [`Self::carry_over`] this is the telemetry invariant:
    /// `epoch_spent <= allowance + carry_over` at all times.
    pub fn epoch_spent(&self) -> u64 {
        self.epoch_spent
    }

    /// Leftover budget that carried into the current epoch at its boundary
    /// (zero during the first epoch: nothing has carried yet).
    pub fn carry_over(&self) -> f64 {
        self.carry_over
    }

    /// Requests currently grantable.
    pub fn available(&self) -> f64 {
        self.available
    }

    /// Total overhead requests granted over the run.
    pub fn total_spent(&self) -> u64 {
        self.total_spent
    }

    /// Total memory accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Realized overhead as a fraction of all observed accesses.
    pub fn realized_overhead(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_spent as f64 / self.total_accesses as f64
        }
    }

    /// Records one memory access; every `epoch_accesses`-th access rolls
    /// the epoch and replenishes the budget (carrying leftover forward).
    /// Returns `true` when an epoch boundary was crossed — the caller runs
    /// its end-of-epoch maintenance (table reselection) then.
    pub fn on_access(&mut self) -> bool {
        self.total_accesses += 1;
        // Saturating: progress resets every epoch and epochs is monotone, so
        // neither can approach u64::MAX in any realistic run.
        self.epoch_progress = self.epoch_progress.saturating_add(1);
        if self.epoch_progress >= self.epoch_accesses {
            self.epoch_progress = 0;
            self.epochs = self.epochs.saturating_add(1);
            // Carry-over: leftover adds to the new allowance (§IV-C1).
            self.carry_over = self.available;
            self.epoch_spent = 0;
            self.available += self.allowance();
            true
        } else {
            false
        }
    }

    /// Completed epochs so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Attempts to spend `requests` of overhead traffic; `false` (and no
    /// spend) if the remaining budget cannot cover it.
    pub fn try_consume(&mut self, requests: u64) -> bool {
        if self.available >= requests as f64 {
            self.available -= requests as f64;
            self.total_spent += requests;
            // Saturating: resets every epoch, cannot approach u64::MAX.
            self.epoch_spent = self.epoch_spent.saturating_add(requests);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_allowance_and_exhaustion() {
        let mut b = TrafficBudget::new(0.01);
        assert!((b.available() - 10_000.0).abs() < 1e-9);
        assert!(b.try_consume(10_000));
        assert!(!b.try_consume(1));
        assert_eq!(b.total_spent(), 10_000);
    }

    #[test]
    fn replenishes_each_epoch_with_carry_over() {
        let mut b = TrafficBudget::new(0.01);
        assert!(b.try_consume(9_000)); // leave 1 000
        let mut boundaries = 0;
        for _ in 0..EPOCH_ACCESSES {
            if b.on_access() {
                boundaries += 1;
            }
        }
        assert_eq!(boundaries, 1);
        assert_eq!(b.epochs(), 1);
        // 1 000 leftover + 10 000 fresh.
        assert!((b.available() - 11_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_fraction_grants_nothing() {
        let mut b = TrafficBudget::new(0.0);
        assert!(!b.try_consume(1));
        assert!(b.try_consume(0));
    }

    #[test]
    fn realized_overhead_tracks_ratio() {
        let mut b = TrafficBudget::new(0.08);
        for _ in 0..1000 {
            b.on_access();
        }
        b.try_consume(20);
        assert!((b.realized_overhead() - 0.02).abs() < 1e-12);
        assert_eq!(TrafficBudget::new(0.01).realized_overhead(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_fraction_panics() {
        let _ = TrafficBudget::new(-0.5);
    }

    #[test]
    fn epoch_spent_and_carry_over_track_boundaries() {
        let mut b = TrafficBudget::with_epoch(0.01, 1_000); // allowance 10
        assert_eq!(b.epoch_accesses(), 1_000);
        assert!((b.allowance() - 10.0).abs() < 1e-12);
        assert!(b.try_consume(4));
        assert_eq!(b.epoch_spent(), 4);
        assert_eq!(b.carry_over(), 0.0, "nothing carried before epoch 1");
        let mut boundaries = 0;
        for _ in 0..1_000 {
            if b.on_access() {
                boundaries += 1;
            }
        }
        assert_eq!(boundaries, 1);
        // 6 left over carried in; per-epoch spend reset.
        assert!((b.carry_over() - 6.0).abs() < 1e-12);
        assert_eq!(b.epoch_spent(), 0);
        assert!((b.available() - 16.0).abs() < 1e-12);
        // The telemetry invariant: spend never exceeds allowance + carry.
        assert!(b.try_consume(16));
        assert!(!b.try_consume(1));
        assert!(b.epoch_spent() as f64 <= b.allowance() + b.carry_over() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn zero_length_epoch_panics() {
        let _ = TrafficBudget::with_epoch(0.01, 0);
    }

    #[test]
    fn failed_consume_does_not_spend() {
        let mut b = TrafficBudget::new(0.01);
        let before = b.available();
        assert!(!b.try_consume(1_000_000));
        assert!((b.available() - before).abs() < 1e-12);
        assert_eq!(b.total_spent(), 0);
    }
}
