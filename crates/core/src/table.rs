//! The memoization table (Figure 9): Memoized Counter Value Groups, the
//! shadow ring of recently evicted groups, and the MRU single-value entries
//! harvested from evicted groups.
//!
//! The table memoizes *counter-only AES results* keyed by counter **value**
//! (not counter block), which is what lets 128 entries cover millions of
//! data blocks. Entries are organized as groups of consecutive values
//! (default 16 groups × 8 values) so that memoization-aware updates usually
//! increment counters by exactly one (§IV-C2).

use std::collections::{BTreeSet, VecDeque};

/// Table geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableConfig {
    /// Live Memoized Counter Value Groups (paper: 16).
    pub n_groups: usize,
    /// Consecutive counter values per group (paper: 8; §VI also evaluates 4
    /// and 16 at constant total entries).
    pub group_size: u64,
    /// Recently evicted groups whose use counters are still tracked
    /// (shadow tags; paper: 16).
    pub n_evicted: usize,
    /// Most-recently-used individual values from evicted groups whose AES
    /// results stay memoized (§IV-C4; paper: 16).
    pub n_mru_values: usize,
}

impl TableConfig {
    /// The paper's configuration: 128 entries as 16 groups of 8.
    pub fn paper() -> Self {
        TableConfig {
            n_groups: 16,
            group_size: 8,
            n_evicted: 16,
            n_mru_values: 16,
        }
    }

    /// Same total entry count with a different group size (Figures 21/22).
    ///
    /// # Panics
    ///
    /// Panics unless `group_size` divides 128.
    #[allow(clippy::cast_possible_truncation)] // quotient of 128 fits any usize
    pub fn with_group_size(group_size: u64) -> Self {
        assert!(
            group_size > 0 && 128 % group_size == 0,
            "group size must divide 128"
        );
        TableConfig {
            n_groups: (128 / group_size) as usize,
            group_size,
            n_evicted: (128 / group_size) as usize,
            n_mru_values: 16,
        }
    }

    /// Total memoized values across live groups.
    pub fn total_entries(&self) -> u64 {
        self.n_groups as u64 * self.group_size
    }
}

impl Default for TableConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One Memoized Counter Value Group: `start .. start + group_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Group {
    /// First counter value in the group.
    pub start: u64,
    /// Times a value in this group was used to decrypt/verify a request.
    pub use_count: u64,
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LookupResult {
    /// The value lies in a live Memoized Counter Value Group.
    GroupHit,
    /// The value is one of the MRU single values from evicted groups.
    MruHit,
    /// Not memoized; the AES must be computed. If the value fell inside a
    /// recently evicted group, it has now been promoted into the MRU list
    /// so immediate reuse will hit.
    Miss,
}

impl LookupResult {
    /// `true` unless the lookup missed.
    pub fn is_hit(self) -> bool {
        !matches!(self, LookupResult::Miss)
    }
}

/// Hit/miss counters for one table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookups that hit a live group.
    pub group_hits: u64,
    /// Lookups that hit an MRU single value.
    pub mru_hits: u64,
    /// Lookups that missed entirely.
    pub misses: u64,
    /// Groups inserted over the table's lifetime.
    pub insertions: u64,
    /// Groups evicted from the live set into the shadow ring (LFU victims
    /// and end-of-epoch demotions).
    pub evictions: u64,
    /// Shadow-ring groups rehabilitated into the live set at an epoch
    /// boundary because their shadow use counters stayed hot (§IV-C3).
    pub shadow_promotions: u64,
    /// Values from evicted groups harvested into the MRU single-value store
    /// after a miss recomputed their AES result (§IV-C4).
    pub mru_harvests: u64,
    /// Lookups that *would* have hit but found a corrupted entry and fell
    /// back to the full AES path instead (fail-safe memoization). Counted
    /// inside `misses` as well, since the request pays the miss cost.
    pub fallbacks: u64,
}

impl TableStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.group_hits + self.mru_hits + self.misses
    }

    /// Field-wise sum of two tallies — how per-shard tables fold into a
    /// service-wide aggregate. Commutative and associative, so any fold
    /// order gives the same totals; the shard aggregator still folds in
    /// shard-index order by convention.
    #[must_use]
    pub fn merged(self, other: TableStats) -> TableStats {
        TableStats {
            group_hits: self.group_hits.saturating_add(other.group_hits),
            mru_hits: self.mru_hits.saturating_add(other.mru_hits),
            misses: self.misses.saturating_add(other.misses),
            insertions: self.insertions.saturating_add(other.insertions),
            evictions: self.evictions.saturating_add(other.evictions),
            shadow_promotions: self
                .shadow_promotions
                .saturating_add(other.shadow_promotions),
            mru_harvests: self.mru_harvests.saturating_add(other.mru_harvests),
            fallbacks: self.fallbacks.saturating_add(other.fallbacks),
        }
    }

    /// Overall hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            (self.group_hits + self.mru_hits) as f64 / n as f64
        }
    }
}

/// The memoization table for one counter level.
///
/// # Examples
///
/// ```
/// use rmcc_core::table::{LookupResult, MemoizationTable, TableConfig};
///
/// let mut t = MemoizationTable::new(TableConfig::paper());
/// t.insert_group(1000);
/// assert_eq!(t.lookup(1003), LookupResult::GroupHit);
/// assert_eq!(t.lookup(1008), LookupResult::Miss); // past the group's end
/// assert_eq!(t.nearest_memoized_above(1001), Some(1002));
/// ```
#[derive(Debug, Clone)]
pub struct MemoizationTable {
    cfg: TableConfig,
    /// Live groups, unordered.
    groups: Vec<Group>,
    /// Shadow ring: most recently evicted groups, newest at the back.
    evicted: VecDeque<Group>,
    /// MRU single values (front = most recent).
    mru_values: VecDeque<u64>,
    /// Values whose memoized AES results are known to be corrupted (fault
    /// injection / detected SRAM upsets). A poisoned value must never be
    /// served as a hit: the next lookup falls back to the full AES path,
    /// recomputes, and thereby heals the entry.
    poisoned: BTreeSet<u64>,
    stats: TableStats,
}

impl MemoizationTable {
    /// An empty table; groups arrive via [`MemoizationTable::insert_group`]
    /// or [`MemoizationTable::seed_groups`].
    pub fn new(cfg: TableConfig) -> Self {
        MemoizationTable {
            cfg,
            groups: Vec::with_capacity(cfg.n_groups),
            evicted: VecDeque::with_capacity(cfg.n_evicted),
            mru_values: VecDeque::with_capacity(cfg.n_mru_values),
            poisoned: BTreeSet::new(),
            stats: TableStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> TableConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Live groups (diagnostics).
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Max-Counter-in-Table: the largest memoized value across live groups,
    /// or `None` while the table is empty.
    pub fn max_counter_in_table(&self) -> Option<u64> {
        self.groups
            .iter()
            .map(|g| g.start + self.cfg.group_size - 1)
            .max()
    }

    /// Whether `value` lies inside a live group.
    pub fn in_live_group(&self, value: u64) -> bool {
        self.groups
            .iter()
            .any(|g| value >= g.start && value < g.start + self.cfg.group_size)
    }

    /// Marks `value`'s memoized AES result as corrupted (a fault-injection
    /// hook modeling an SRAM upset in the table). Returns `true` if the
    /// value was actually memoized — i.e. the corruption hit live state and
    /// the fail-safe path will be exercised — and `false` if there was
    /// nothing to corrupt.
    pub fn corrupt_entry(&mut self, value: u64) -> bool {
        if self.probe(value) {
            self.poisoned.insert(value);
            true
        } else {
            false
        }
    }

    /// Marks *every* currently memoized value — live groups and MRU singles
    /// alike — as corrupted: the massive-SRAM-upset injection a chaos
    /// campaign uses to force a quarantine instead of entry-at-a-time
    /// healing. Returns how many values were poisoned.
    pub fn corrupt_all_entries(&mut self) -> u64 {
        let size = self.cfg.group_size;
        let mut values: Vec<u64> = self
            .groups
            .iter()
            .flat_map(|g| g.start..g.start.saturating_add(size))
            .collect();
        values.extend(self.mru_values.iter().copied());
        let mut poisoned = 0u64;
        for v in values {
            if self.poisoned.insert(v) {
                poisoned = poisoned.saturating_add(1);
            }
        }
        poisoned
    }

    /// The number of values currently marked corrupted and not yet healed —
    /// a health monitor's scrub probe.
    pub fn poisoned_entries(&self) -> u64 {
        self.poisoned.len() as u64
    }

    /// Discards every entry — live groups, shadow ring, MRU singles, and
    /// poison marks — returning the table to its just-constructed (empty)
    /// state. Cumulative statistics are deliberately preserved: a rebuild
    /// resets *state*, not *telemetry history*.
    pub fn reset_entries(&mut self) {
        self.groups.clear();
        self.evicted.clear();
        self.mru_values.clear();
        self.poisoned.clear();
    }

    /// Looks up the counter-only result for `value`, updating use counters,
    /// MRU recency, and statistics.
    ///
    /// A corrupted entry is never served: the lookup reports a miss (so the
    /// caller runs the full AES path), drops the bad single-value copy, and
    /// clears the poison — the recomputed result re-memoizes the value,
    /// healing the table.
    pub fn lookup(&mut self, value: u64) -> LookupResult {
        let size = self.cfg.group_size;
        if self.poisoned.remove(&value) {
            if let Some(pos) = self.mru_values.iter().position(|&v| v == value) {
                self.mru_values.remove(pos);
            }
            self.stats.fallbacks += 1;
            self.stats.misses += 1;
            return LookupResult::Miss;
        }
        if let Some(g) = self
            .groups
            .iter_mut()
            .find(|g| value >= g.start && value < g.start + size)
        {
            g.use_count += 1;
            self.stats.group_hits += 1;
            return LookupResult::GroupHit;
        }
        if let Some(pos) = self.mru_values.iter().position(|&v| v == value) {
            // Refresh recency.
            self.mru_values.remove(pos);
            self.mru_values.push_front(value);
            self.stats.mru_hits += 1;
            return LookupResult::MruHit;
        }
        // A miss; if the value falls in an evicted group, track its shadow
        // use count and promote the (now freshly computed) AES result into
        // the MRU single-value store for next time (§IV-C4).
        if let Some(g) = self
            .evicted
            .iter_mut()
            .find(|g| value >= g.start && value < g.start + size)
        {
            g.use_count += 1;
            self.mru_values.push_front(value);
            self.mru_values.truncate(self.cfg.n_mru_values);
            self.stats.mru_harvests += 1;
        }
        self.stats.misses += 1;
        LookupResult::Miss
    }

    /// Peeks whether `value` is memoized without touching any state
    /// (for policy decisions that shouldn't perturb use counters). A
    /// poisoned value reports `false`: its cached result is untrusted.
    pub fn probe(&self, value: u64) -> bool {
        !self.poisoned.contains(&value)
            && (self.in_live_group(value) || self.mru_values.contains(&value))
    }

    /// The smallest *live-group* value strictly greater than `current` —
    /// the memoization-aware update target. MRU values are deliberately
    /// excluded: their composition churns with every access (§IV-C4).
    /// Poisoned values are *not* excluded: this picks a counter target, not
    /// a cached AES result — decryption under the target goes through
    /// [`MemoizationTable::lookup`], which fails safe.
    pub fn nearest_memoized_above(&self, current: u64) -> Option<u64> {
        let size = self.cfg.group_size;
        self.groups
            .iter()
            .filter_map(|g| {
                let end = g.start + size; // exclusive
                if current + 1 >= end {
                    None
                } else {
                    Some(g.start.max(current + 1))
                }
            })
            .min()
    }

    /// Inserts a new group starting at `start`, evicting the least
    /// frequently used live group if the table is full (§IV-C3). The victim
    /// joins the shadow ring with its use counter intact.
    pub fn insert_group(&mut self, start: u64) {
        // Re-inserting an existing group is a no-op.
        if self.groups.iter().any(|g| g.start == start) {
            return;
        }
        self.stats.insertions += 1;
        if self.groups.len() >= self.cfg.n_groups {
            let lfu = self
                .groups
                .iter()
                .enumerate()
                .min_by_key(|(_, g)| g.use_count)
                .map(|(i, _)| i);
            if let Some(lfu) = lfu {
                let victim = self.groups.swap_remove(lfu);
                self.stats.evictions += 1;
                self.push_evicted(victim);
            }
        }
        // A freshly inserted group starts with a modest score so it isn't
        // immediately re-evicted before proving itself.
        self.groups.push(Group {
            start,
            use_count: 1,
        });
    }

    /// Seeds the table with groups at the given starts (initialization).
    pub fn seed_groups(&mut self, starts: impl IntoIterator<Item = u64>) {
        for s in starts {
            self.insert_group(s);
        }
    }

    fn push_evicted(&mut self, g: Group) {
        // Drop stale MRU values that belonged to *live* coverage — they stay
        // valid (they are still memoized results), so nothing to do there.
        if self.evicted.len() >= self.cfg.n_evicted {
            self.evicted.pop_front();
        }
        self.evicted.push_back(g);
    }

    /// End-of-epoch reselection (§IV-C3): keep the most frequently used
    /// groups out of live + evicted, optionally admitting `new_group` (the
    /// candidate monitor's 98th-percentile pick) as one of the live set.
    /// All use counters are halved afterwards so the table stays adaptive.
    pub fn epoch_reselect(&mut self, new_group: Option<u64>) {
        // Track each group's origin so the stats distinguish shadow-ring
        // rehabilitations (promotions) from live-set demotions (evictions).
        let mut pool: Vec<(Group, bool)> = self.groups.drain(..).map(|g| (g, false)).collect();
        pool.extend(self.evicted.drain(..).map(|g| (g, true)));
        // Highest use count first; stable on start for determinism.
        pool.sort_by(|a, b| {
            b.0.use_count
                .cmp(&a.0.use_count)
                .then(a.0.start.cmp(&b.0.start))
        });
        pool.dedup_by_key(|g| g.0.start);

        let mut keep = self.cfg.n_groups;
        if let Some(start) = new_group {
            if !pool.iter().take(keep).any(|g| g.0.start == start) {
                keep -= 1;
            }
        }
        for (g, from_shadow) in pool.iter().take(keep) {
            if *from_shadow {
                self.stats.shadow_promotions += 1;
            }
            self.groups.push(*g);
        }
        if let Some(start) = new_group {
            if !self.groups.iter().any(|g| g.start == start) {
                self.stats.insertions += 1;
                self.groups.push(Group {
                    start,
                    use_count: 1,
                });
            }
        }
        for (g, from_shadow) in pool.into_iter().skip(keep) {
            if !from_shadow {
                self.stats.evictions += 1;
            }
            self.push_evicted(g);
        }
        // Age.
        for g in &mut self.groups {
            g.use_count /= 2;
        }
        for g in &mut self.evicted {
            g.use_count /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MemoizationTable {
        MemoizationTable::new(TableConfig::paper())
    }

    #[test]
    fn config_geometry() {
        let c = TableConfig::paper();
        assert_eq!(c.total_entries(), 128);
        let c4 = TableConfig::with_group_size(4);
        assert_eq!(c4.n_groups, 32);
        assert_eq!(c4.total_entries(), 128);
        let c16 = TableConfig::with_group_size(16);
        assert_eq!(c16.n_groups, 8);
    }

    #[test]
    #[should_panic(expected = "divide 128")]
    fn bad_group_size_panics() {
        let _ = TableConfig::with_group_size(5);
    }

    #[test]
    fn lookup_hits_whole_group_range() {
        let mut t = table();
        t.insert_group(100);
        for v in 100..108 {
            assert_eq!(t.lookup(v), LookupResult::GroupHit, "value {v}");
        }
        assert_eq!(t.lookup(99), LookupResult::Miss);
        assert_eq!(t.lookup(108), LookupResult::Miss);
        assert_eq!(t.stats().group_hits, 8);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn nearest_memoized_above_selects_minimum() {
        let mut t = table();
        t.insert_group(100);
        t.insert_group(50);
        assert_eq!(t.nearest_memoized_above(0), Some(50));
        assert_eq!(t.nearest_memoized_above(50), Some(51));
        assert_eq!(t.nearest_memoized_above(57), Some(100));
        assert_eq!(t.nearest_memoized_above(103), Some(104));
        assert_eq!(t.nearest_memoized_above(107), None);
        assert_eq!(t.nearest_memoized_above(9999), None);
    }

    #[test]
    fn consecutive_writes_walk_the_group() {
        // Figure 7: consecutive writebacks keep hitting because groups hold
        // consecutive values.
        let mut t = table();
        t.insert_group(35);
        let mut v = 34;
        for _ in 0..8 {
            v = t.nearest_memoized_above(v).unwrap();
            assert!(t.probe(v));
        }
        assert_eq!(v, 42);
    }

    #[test]
    fn lfu_group_is_evicted_on_insert() {
        let mut t = table();
        for i in 0..16 {
            t.insert_group(i * 100);
        }
        // Warm every group except the one at 300.
        for i in 0..16 {
            if i != 3 {
                for _ in 0..5 {
                    t.lookup(i * 100);
                }
            }
        }
        t.insert_group(10_000);
        assert!(!t.in_live_group(300), "LFU group must be evicted");
        assert!(t.in_live_group(10_000));
        assert!(t.in_live_group(0));
    }

    #[test]
    fn evicted_group_values_promote_into_mru() {
        let mut t = table();
        for i in 0..17 {
            t.insert_group(i * 100); // 17th insert evicts one group
        }
        // Find the evicted group's range: group 0 had no uses → victim.
        assert!(!t.in_live_group(0));
        // First touch misses but promotes.
        assert_eq!(t.lookup(3), LookupResult::Miss);
        assert_eq!(t.lookup(3), LookupResult::MruHit);
        // Values never memoized don't promote.
        assert_eq!(t.lookup(99_999), LookupResult::Miss);
        assert_eq!(t.lookup(99_999), LookupResult::Miss);
    }

    #[test]
    fn mru_capacity_is_bounded() {
        let mut t = table();
        t.insert_group(0);
        for i in 1..=16 {
            t.insert_group(i * 1000); // evicts group 0 eventually
        }
        assert!(!t.in_live_group(0));
        // Promote 20 distinct values from the evicted range (only 8 exist
        // per group, so reuse two evicted groups if present).
        for v in 0..8u64 {
            t.lookup(v);
        }
        for v in 0..8u64 {
            assert_eq!(t.lookup(v), LookupResult::MruHit, "value {v}");
        }
    }

    #[test]
    fn max_counter_in_table_tracks_groups() {
        let mut t = table();
        assert_eq!(t.max_counter_in_table(), None);
        t.insert_group(100);
        assert_eq!(t.max_counter_in_table(), Some(107));
        t.insert_group(5000);
        assert_eq!(t.max_counter_in_table(), Some(5007));
    }

    #[test]
    fn epoch_reselect_keeps_hot_groups_and_admits_candidate() {
        let mut t = table();
        for i in 0..16 {
            t.insert_group(i * 100);
        }
        // Make groups 0..8 hot.
        for i in 0..8 {
            for _ in 0..10 {
                t.lookup(i * 100);
            }
        }
        t.epoch_reselect(Some(77_000));
        assert!(t.in_live_group(77_000), "candidate must be admitted");
        for i in 0..8 {
            assert!(t.in_live_group(i * 100), "hot group {i} must survive");
        }
        assert_eq!(t.groups().len(), 16);
    }

    #[test]
    fn epoch_reselect_rehabilitates_hot_evicted_groups() {
        let mut t = table();
        for i in 0..17 {
            t.insert_group(i * 100); // group 0 evicted (LFU)
        }
        assert!(!t.in_live_group(0));
        // Hammer the evicted range: shadow counter climbs.
        for _ in 0..50 {
            t.lookup(5);
        }
        t.epoch_reselect(None);
        assert!(t.in_live_group(5), "hot evicted group must return");
    }

    #[test]
    fn reinserting_live_group_is_noop() {
        let mut t = table();
        t.insert_group(10);
        let before = t.stats().insertions;
        t.insert_group(10);
        assert_eq!(t.stats().insertions, before);
        assert_eq!(t.groups().len(), 1);
    }

    #[test]
    fn corrupted_group_entry_falls_back_then_heals() {
        let mut t = table();
        t.insert_group(100);
        assert_eq!(t.lookup(103), LookupResult::GroupHit);
        assert!(t.corrupt_entry(103), "value is memoized");
        assert!(!t.probe(103), "corrupted result must not be trusted");
        // The fail-safe path: a miss (full AES), counted as a fallback.
        assert_eq!(t.lookup(103), LookupResult::Miss);
        assert_eq!(t.stats().fallbacks, 1);
        // The recompute healed the entry; subsequent lookups hit again.
        assert_eq!(t.lookup(103), LookupResult::GroupHit);
        assert_eq!(t.stats().fallbacks, 1);
    }

    #[test]
    fn corrupted_mru_entry_falls_back() {
        let mut t = table();
        for i in 0..17 {
            t.insert_group(i * 100); // evicts group 0
        }
        assert!(!t.in_live_group(0));
        t.lookup(3); // promote into MRU
        assert_eq!(t.lookup(3), LookupResult::MruHit);
        assert!(t.corrupt_entry(3));
        assert_eq!(t.lookup(3), LookupResult::Miss);
        assert_eq!(t.stats().fallbacks, 1);
    }

    #[test]
    fn corrupting_unmemoized_value_is_inert() {
        let mut t = table();
        t.insert_group(100);
        assert!(!t.corrupt_entry(99_999));
        assert_eq!(t.lookup(99_999), LookupResult::Miss);
        assert_eq!(t.stats().fallbacks, 0);
    }

    #[test]
    fn poison_does_not_block_update_targets() {
        let mut t = table();
        t.insert_group(100);
        assert!(t.corrupt_entry(101));
        // Counter-target selection still walks the group (it never serves
        // the cached AES result); only lookup-side use is gated.
        assert_eq!(t.nearest_memoized_above(100), Some(101));
    }

    #[test]
    fn stats_count_evictions_promotions_and_harvests() {
        let mut t = table();
        for i in 0..17 {
            t.insert_group(i * 100); // 17th insert evicts the LFU (group 0)
        }
        assert_eq!(t.stats().evictions, 1);
        assert_eq!(t.stats().mru_harvests, 0);
        // Miss in the evicted range harvests the value into the MRU store.
        assert_eq!(t.lookup(3), LookupResult::Miss);
        assert_eq!(t.stats().mru_harvests, 1);
        assert_eq!(t.lookup(3), LookupResult::MruHit);
        assert_eq!(t.stats().mru_harvests, 1, "hits do not re-harvest");
        // Keep the shadow group hot; reselection promotes it back and
        // demotes exactly one cold live group.
        for _ in 0..50 {
            t.lookup(5);
        }
        let evictions_before = t.stats().evictions;
        t.epoch_reselect(None);
        assert!(t.in_live_group(5));
        assert_eq!(t.stats().shadow_promotions, 1);
        assert_eq!(t.stats().evictions, evictions_before + 1);
    }

    #[test]
    fn corrupt_all_entries_poisons_every_memoized_value() {
        let mut t = table();
        t.insert_group(100);
        for i in 0..17 {
            t.insert_group(1000 + i * 100); // evicts the LFU along the way
        }
        t.lookup(103); // keep 100's group warm (it may have been evicted)
        let n = t.corrupt_all_entries();
        assert_eq!(t.poisoned_entries(), n);
        assert!(n >= 16 * 8, "every live-group value is poisoned");
        // No memoized value survives a probe.
        for g in t.groups().to_vec() {
            for v in g.start..g.start + t.config().group_size {
                assert!(!t.probe(v), "value {v} must read corrupted");
            }
        }
        // Healing one entry shrinks the poison set by one.
        let victim = t.groups()[0].start;
        assert_eq!(t.lookup(victim), LookupResult::Miss);
        assert_eq!(t.poisoned_entries(), n - 1);
        assert_eq!(t.stats().fallbacks, 1);
    }

    #[test]
    fn reset_entries_empties_state_but_keeps_stats() {
        let mut t = table();
        for i in 0..17 {
            t.insert_group(i * 100);
        }
        t.lookup(3); // MRU harvest from the evicted group
        t.corrupt_all_entries();
        let stats = t.stats();
        assert!(stats.insertions > 0 && stats.misses > 0);
        t.reset_entries();
        assert!(t.groups().is_empty());
        assert_eq!(t.poisoned_entries(), 0);
        assert_eq!(t.max_counter_in_table(), None);
        assert_eq!(t.stats(), stats, "history survives the reset");
        // The table works again from scratch.
        t.insert_group(500);
        assert_eq!(t.lookup(503), LookupResult::GroupHit);
        assert_eq!(t.lookup(3), LookupResult::Miss, "old MRU copies are gone");
    }

    #[test]
    fn stats_hit_rate() {
        let mut t = table();
        t.insert_group(0);
        t.lookup(0);
        t.lookup(1);
        t.lookup(500);
        assert!((t.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(TableStats::default().hit_rate(), 0.0);
    }
}
