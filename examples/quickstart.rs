//! Quickstart: the RMCC stack in five minutes.
//!
//! Walks through the library bottom-up — encrypt/verify a block, watch the
//! memoization table self-reinforce, and run a small end-to-end simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rmcc::core::rmcc::{Rmcc, RmccConfig};
use rmcc::secmem::counters::{CounterBlock, CounterOrg};
use rmcc::secmem::engine::{PipelineKind, SecureMemory};
use rmcc::sim::config::{Scheme, SystemConfig};
use rmcc::sim::core_model::CoreModel;
use rmcc::sim::lifetime::{run_lifetime, LifetimeRunner};
use rmcc::sim::runner::Runner;
use rmcc::workloads::workload::{Scale, Workload};

fn main() {
    banner("1. Counter-mode secure memory, functionally");
    let mut mem = SecureMemory::new(CounterOrg::Morphable128, 1 << 24, PipelineKind::Rmcc, 2024);
    let secret = block_of(b"attack at dawn");
    mem.write(7, secret).expect("write within capacity");
    println!("  wrote block 7, counter is now {}", mem.counter_of(7));
    println!(
        "  read back: {:?}",
        std::str::from_utf8(&mem.read(7).unwrap()[..14]).unwrap()
    );
    mem.tamper_data(7, 3, 0x80).expect("block 7 is written");
    println!(
        "  after a bus-level bit flip: {:?}",
        mem.read(7).unwrap_err()
    );

    banner("2. The memoization table self-reinforces (Figure 6)");
    let mut rmcc = Rmcc::new(RmccConfig::paper());
    rmcc.seed_group(0, 20_000_000); // the paper's example value
                                    // Ten scattered counter blocks, all with different histories.
    let mut blocks: Vec<CounterBlock> = (0..10)
        .map(|i| CounterBlock::with_state(CounterOrg::Morphable128, 1_000 * (i + 1), vec![0; 128]))
        .collect();
    for (i, cb) in blocks.iter_mut().enumerate() {
        let before = cb.value(0);
        let out = rmcc.update_counter(0, cb, 0, false).expect("writeback");
        println!(
            "  block {i}: counter {before:>6} -> {:>9} (memoized: {})",
            out.new_value, out.landed_on_memoized
        );
    }
    let covered = blocks
        .iter()
        .filter(|cb| rmcc.lookup(0, cb.value(0)).is_hit())
        .count();
    println!("  {covered}/10 blocks now decrypt via the memoization table");

    banner("3. A whole-lifetime simulation (canneal, tiny input)");
    for scheme in [Scheme::Morphable, Scheme::Rmcc] {
        let report = run_lifetime(
            Workload::Canneal,
            Scale::Tiny,
            None,
            &SystemConfig::lifetime(scheme),
        )
        .expect("canneal needs no graph");
        print!(
            "  {scheme:<10} LLC misses {:>7}  counter-miss rate {:>5.1}%",
            report.llc_misses,
            100.0 * report.counter_miss_rate()
        );
        if scheme == Scheme::Rmcc {
            print!(
                "  memoization hit rate {:>5.1}%",
                100.0 * report.meta.memo_l0.all_hit_rate()
            );
        }
        println!();
    }

    banner("4. One trace source, every runner");
    // A workload is a streaming trace source; any Runner consumes it —
    // kernels re-execute per run, nothing is buffered.
    let cfg = SystemConfig::lifetime(Scheme::Rmcc);
    let functional = LifetimeRunner::new(&cfg).run(&mut Workload::Mcf.source(Scale::Tiny));
    let timed = CoreModel::new(&cfg, 0x9a9e).run(&mut Workload::Mcf.source(Scale::Tiny));
    println!(
        "  lifetime: {} accesses, {} LLC misses",
        functional.accesses, functional.llc_misses
    );
    println!(
        "  detailed: {} instrs in {:.2} ms simulated ({} LLC misses — same stream)",
        timed.instrs,
        timed.elapsed_ps as f64 / 1e9,
        timed.llc_misses
    );

    banner("5. Epoch-resolved telemetry (opt-in)");
    if std::env::var_os("RMCC_TELEMETRY").is_some() {
        let mut cfg = SystemConfig::lifetime(Scheme::Rmcc);
        cfg.telemetry = true;
        cfg.rmcc.epoch_accesses = 200; // short epochs so a tiny run resolves several
        let mut runner = LifetimeRunner::new(&cfg);
        runner.run(&mut Workload::Canneal.source(Scale::Tiny));
        let jsonl = runner
            .engine()
            .finish_telemetry()
            .expect("telemetry was on");
        let rows = rmcc::telemetry::parse_jsonl(&jsonl).expect("well-formed JSONL");
        println!("  {} epoch snapshots; the last one:", rows.len());
        println!("  {}", jsonl.lines().last().unwrap_or_default());
        let last = rows.last().expect("at least one epoch");
        let col = |key: &str| {
            last.get(key)
                .and_then(rmcc::telemetry::JsonValue::as_f64)
                .unwrap_or(0.0)
        };
        assert!(col("aes_paid") > 0.0, "AES work must be tallied");
        assert!(col("total_requests") > 0.0, "requests must be counted");
        assert!(
            (0.0..=1.0).contains(&col("conformance_ratio")),
            "conformance is a ratio"
        );
        println!(
            "  telemetry-ok: {} epochs, {} AES paid, {} saved",
            rows.len(),
            col("aes_paid") as u64,
            col("aes_saved") as u64
        );
    } else {
        println!("  set RMCC_TELEMETRY=1 to record a JSONL series of this run");
        println!("  (see also: cargo run --release --example convergence_report)");
    }

    banner("6. Multi-tenant sharded service (batched API)");
    {
        use rmcc::secmem::{
            digest_results, serial_reference, Access, SecureMemoryService, ServiceConfig,
        };
        // Four shards over one address space; reads of the routing snapshot
        // are lock-free (Arc clone), and a batch fans out across shards
        // while returning results in submission order.
        let cfg = ServiceConfig::new(4, 1 << 24).with_jobs(2);
        let service = SecureMemoryService::new(&cfg);
        let snap = service.snapshot();
        let batch: Vec<Access> = (0..8u64)
            .flat_map(|tenant| {
                let block = tenant * snap.coverage() * 7;
                [
                    Access::Write {
                        block,
                        data: block_of(b"tenant payload"),
                    },
                    Access::Read { block },
                ]
            })
            .collect();
        let results = service.submit(&batch);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, results.len(), "every access in the batch succeeds");
        // The batched results are byte-identical to a fresh single-engine
        // serial execution — the digest is order-sensitive, so this checks
        // order too.
        let serial = serial_reference(&cfg, &batch);
        assert_eq!(digest_results(&results), digest_results(&serial));
        println!(
            "  service-ok: {} accesses over {} shards (snapshot v{}), batched == serial",
            results.len(),
            snap.shards(),
            snap.version()
        );
    }

    println!("\nNext: `cargo run --release -p rmcc-bench --bin figures` regenerates the paper.");
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Pads a message into one 64-byte memory block.
fn block_of(msg: &[u8]) -> [u8; 64] {
    let mut b = [b'.'; 64];
    b[..msg.len()].copy_from_slice(msg);
    b
}
