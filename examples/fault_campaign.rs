//! Seeded fault-injection campaign across the threat-model matrix.
//!
//! Runs one campaign per (counter organization × OTP pipeline) cell, prints
//! each per-class tally, and exits nonzero if any campaign observes a silent
//! corruption, misses an integrity-affecting fault, or leaves the memory
//! diverged from its plaintext shadow copy.
//!
//! ```text
//! cargo run --release --example fault_campaign -- [--faults N] [--seed S]
//! ```
//!
//! Defaults: 1,000 faults per cell, seed 0x524d4343 ("RMCC"). The whole run
//! is determined by the seed, so a CI failure reproduces with one command.

use std::process::ExitCode;

use rmcc::faults::{run_campaign, CampaignConfig};
use rmcc::secmem::counters::CounterOrg;
use rmcc::secmem::engine::PipelineKind;

fn parse_args() -> Result<(u64, u64), String> {
    let mut faults = 1_000u64;
    let mut seed = 0x524d_4343u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<u64, String> {
            let raw = args.next().ok_or_else(|| format!("{name} needs a value"))?;
            raw.parse::<u64>()
                .map_err(|e| format!("{name} {raw:?}: {e}"))
        };
        match arg.as_str() {
            "--faults" => faults = value("--faults")?,
            "--seed" => seed = value("--seed")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok((faults, seed))
}

fn main() -> ExitCode {
    let (faults, seed) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: fault_campaign [--faults N] [--seed S]");
            return ExitCode::FAILURE;
        }
    };

    let matrix = [
        (CounterOrg::Morphable128, PipelineKind::Rmcc),
        (CounterOrg::Morphable128, PipelineKind::Sgx),
        (CounterOrg::Sc64, PipelineKind::Rmcc),
        (CounterOrg::Sc64, PipelineKind::Sgx),
    ];

    let mut clean = true;
    let mut total = 0u64;
    let mut silent = 0u64;
    for (org, pipeline) in matrix {
        let mut cfg = CampaignConfig::new(org, pipeline);
        cfg.faults = faults;
        cfg.seed = seed;
        let report = run_campaign(&cfg);
        println!("{report}\n");
        total += report.total_injected();
        silent += report.silent_corruptions();
        clean &= report.silent_corruptions() == 0
            && report.all_integrity_faults_detected()
            && report.final_state_intact;
    }

    println!("campaign matrix total: {total} faults");
    println!("campaign matrix silent corruptions: {silent}");
    if clean {
        println!(
            "campaign verdict: PASS (every integrity fault detected, zero silent corruptions)"
        );
        ExitCode::SUCCESS
    } else {
        println!("campaign verdict: FAIL");
        ExitCode::FAILURE
    }
}
