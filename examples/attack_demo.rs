//! Attack demo: what secure memory actually defends against.
//!
//! Plays the adversary with physical access that the paper's threat model
//! assumes (a memory-bus probe, §II): spoofing ciphertext, forging MACs,
//! and mounting a full replay — and shows each one being caught. Finishes
//! with the §IV-D1 empirical check that RMCC's truncated-clmul OTPs are as
//! random as raw AES output.
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```

use rmcc::crypto::aes::Aes;
use rmcc::crypto::nist::{pass_rate, BitStream};
use rmcc::crypto::otp::{KeySet, PadPurpose, RmccOtp, COUNTER_MAX};
use rmcc::secmem::counters::CounterOrg;
use rmcc::secmem::engine::{PipelineKind, ReadError, SecureMemory};

fn main() {
    let mut mem = SecureMemory::new(CounterOrg::Morphable128, 1 << 24, PipelineKind::Rmcc, 99);
    let block = 1234;
    mem.write(block, block_of(b"wire $1,000,000 to account 7731"))
        .expect("write within capacity");

    println!("=== Attack 1: flip one ciphertext bit on the bus ===");
    mem.tamper_data(block, 31, 0x01).expect("block is written");
    report(mem.read(block));
    // Restore by rewriting.
    mem.write(block, block_of(b"wire $1,000,000 to account 7731"))
        .expect("write within capacity");

    println!("\n=== Attack 2: forge the MAC too ===");
    mem.tamper_data(block, 31, 0x01).expect("block is written");
    mem.tamper_mac(block, 0xdead_beef)
        .expect("block is written");
    report(mem.read(block));
    mem.write(block, block_of(b"wire $1,000,000 to account 7731"))
        .expect("write within capacity");

    println!("\n=== Attack 3: full replay (stale data + MAC + counter image) ===");
    let stale = mem.snapshot(block).expect("block is on the bus");
    mem.write(block, block_of(b"wire $1 to account 7731"))
        .expect("write within capacity");
    println!("  victim updated the block; attacker replays the old snapshot");
    mem.replay(&stale).expect("snapshot is from this memory");
    report(mem.read(block));

    println!("\n=== Attack 4: forge the counter image at the 56-bit bound ===");
    // Probe for saturation-handling bugs: jam every counter in the covering
    // block to the Observed-System-Max bound, then to COUNTER_MAX itself.
    let l0 = mem.layout().l0_index(block);
    for forged in [mem.observed_max() + 1, COUNTER_MAX] {
        mem.forge_node_counters(0, l0, forged)
            .expect("node is in the layout");
        println!("  attacker forges the counter image to {forged}");
        report(mem.read(block));
    }

    println!("\n=== §IV-D1: are RMCC's OTPs still random? ===");
    let keys = KeySet::from_master(7);
    let pipe = RmccOtp::new(keys);
    let aes = Aes::new_128(&[7u8; 16]);

    // Stream A: raw AES counter-mode output.
    let aes_words: Vec<u128> = (0..2048u128).map(|i| aes.encrypt_u128(i)).collect();
    // Stream B: RMCC OTPs across counters and addresses.
    let otp_words: Vec<u128> = (0..2048u64)
        .map(|i| {
            pipe.word_pad(
                i * 31 % 65_536,
                (i % 4) as u8,
                1 + i % 999,
                PadPurpose::Encryption,
            )
        })
        .collect();

    let aes_rate = pass_rate(&[BitStream::from_u128_words(&aes_words)]);
    let otp_rate = pass_rate(&[BitStream::from_u128_words(&otp_words)]);
    println!(
        "  NIST STS pass rate, raw AES stream : {:.0}%",
        aes_rate * 100.0
    );
    println!(
        "  NIST STS pass rate, RMCC OTP stream: {:.0}%",
        otp_rate * 100.0
    );
    println!(
        "  -> OTPs pass at the same rate as the AES streams they are built from: {}",
        (aes_rate - otp_rate).abs() < 0.2
    );
}

/// Pads a message into one 64-byte memory block.
fn block_of(msg: &[u8]) -> [u8; 64] {
    let mut b = [b'.'; 64];
    b[..msg.len()].copy_from_slice(msg);
    b
}

fn report(result: Result<[u8; 64], ReadError>) {
    match result {
        Ok(data) => println!("  !! UNDETECTED: read returned {:?}…", &data[..16]),
        Err(e) => println!("  detected: {e}"),
    }
}
