//! Epoch-resolved convergence report — the paper's self-reinforcement
//! story (Figures 6–8) as a table.
//!
//! With no arguments, runs the seeded [`rmcc::sim::dynamics`] workload,
//! renders its telemetry series epoch by epoch, and checks that the
//! conformance ratio actually improved (printing a greppable
//! `convergence-report-ok:` line for CI). Given a path, renders an
//! existing JSONL series instead — e.g. one written by
//! `Experiments::telemetry_sweep` or any run with `SystemConfig.telemetry`
//! on.
//!
//! ```text
//! cargo run --release --example convergence_report
//! cargo run --release --example convergence_report -- series.jsonl
//! ```

use rmcc::sim::dynamics::{run_dynamics, DynamicsConfig};
use rmcc::telemetry::{parse_jsonl, JsonValue};

fn main() {
    let arg = std::env::args().nth(1);
    let (jsonl, from_run) = match arg {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            println!("Rendering telemetry series from {path}\n");
            (text, false)
        }
        None => {
            let cfg = DynamicsConfig::small();
            println!(
                "Running the seeded dynamics workload ({} steps, epoch = {} accesses, seed {:#x})\n",
                cfg.steps, cfg.epoch_accesses, cfg.seed
            );
            (run_dynamics(&cfg).jsonl, true)
        }
    };

    let rows = parse_jsonl(&jsonl).expect("well-formed telemetry JSONL");
    assert!(!rows.is_empty(), "series contains no epochs");

    println!(
        "{:>5} {:>10} {:>12} {:>10} {:>10} {:>6} {:>10} {:>9} {:>7} {:>10}",
        "epoch",
        "accesses",
        "conformance",
        "hit(cum)",
        "hit(ep)",
        "osm",
        "aes_saved",
        "spent(ep)",
        "carry",
        "inserts"
    );
    for row in &rows {
        println!(
            "{:>5} {:>10} {:>12.4} {:>10.4} {:>10.4} {:>6} {:>10} {:>9} {:>7} {:>10}",
            num(row, "epoch") as u64,
            num(row, "accesses") as u64,
            num(row, "conformance_ratio"),
            num(row, "table_hit_rate"),
            num(row, "table_hit_rate_epoch"),
            num(row, "osm") as u64,
            num(row, "aes_saved") as u64,
            num(row, "budget_spent_epoch") as u64,
            num(row, "budget_carry_over") as u64,
            num(row, "table_insertions") as u64,
        );
    }

    let first = num(&rows[0], "conformance_ratio");
    let last = num(rows.last().expect("non-empty"), "conformance_ratio");
    println!(
        "\nConformance ratio: {first:.4} in the first epoch -> {last:.4} in the last \
         ({} epochs). This is the self-reinforcing loop of the paper's IV-B: each\n\
         relevel lands more counters on memoized values, which makes the next epoch's\n\
         decryptions cheaper and its relevels better targeted.",
        rows.len()
    );

    if from_run {
        assert!(
            last > first,
            "self-reinforcement failed: conformance {first:.4} -> {last:.4}"
        );
        println!(
            "convergence-report-ok: conformance {first:.4} -> {last:.4} over {} epochs",
            rows.len()
        );
    }
}

/// Reads a numeric column from one JSONL row (0.0 when absent, so external
/// series with fewer columns still render).
fn num(row: &JsonValue, key: &str) -> f64 {
    row.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}
