//! Watch self-reinforcement happen: the Figure 6 / Figure 7 dynamics.
//!
//! Drives the seeded [`rmcc::sim::dynamics`] workload — a hot/cold,
//! write-heavy stream into a cold-start RMCC engine with telemetry on —
//! and prints the epoch-resolved trajectory: the high-value monitor
//! populates the memoization table, writes start conforming to the
//! memoized ladder, and the table hit rate climbs epoch over epoch.
//!
//! The run is a pure function of [`DynamicsConfig`]: same config, same
//! table, byte for byte (the golden test pins exactly this series).
//!
//! ```text
//! cargo run --release --example memoization_dynamics
//! ```

use rmcc::sim::dynamics::{run_dynamics, DynamicsConfig};
use rmcc::telemetry::{parse_jsonl, JsonValue};

fn main() {
    let cfg = DynamicsConfig::small();
    println!(
        "Cold-start RMCC, {} operations ({} hot blocks of {}, {}% writes), epoch = {} accesses:\n",
        cfg.steps,
        cfg.hot_blocks,
        cfg.working_set_blocks,
        cfg.write_permille / 10,
        cfg.epoch_accesses
    );

    let result = run_dynamics(&cfg);
    let rows = parse_jsonl(&result.jsonl).expect("well-formed telemetry JSONL");

    println!(
        "{:>5} {:>10} {:>8} {:>10} {:>12} {:>6} {:>10} {:>10}",
        "epoch", "accesses", "inserts", "hit-rate", "conformance", "osm", "aes_paid", "aes_saved"
    );
    for row in &rows {
        let col = |key: &str| row.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
        println!(
            "{:>5} {:>10} {:>8} {:>9.1}% {:>12.4} {:>6} {:>10} {:>10}",
            col("epoch") as u64,
            col("accesses") as u64,
            col("table_insertions") as u64,
            100.0 * col("table_hit_rate"),
            col("conformance_ratio"),
            col("osm") as u64,
            col("aes_paid") as u64,
            col("aes_saved") as u64,
        );
    }

    println!(
        "\nfinal: {} reads, {} writes, {} AES ops saved of {} paid ({:.1}% of decrypt work)",
        result.stats.data_reads,
        result.stats.data_writes,
        result.crypto.aes_saved,
        result.crypto.aes_paid,
        100.0 * result.crypto.aes_saved as f64
            / (result.crypto.aes_paid + result.crypto.aes_saved).max(1) as f64
    );
    println!("The hit rate and conformance climbing epoch over epoch is exactly");
    println!("the paper's Challenge-1/2/3 resolution (IV-B): memoized values make");
    println!("relevels cheap, and relevels make more values memoized.");
}
