//! Watch self-reinforcement happen: the Figure 6 / Figure 7 dynamics.
//!
//! Sets up memory whose counters start at scattered random values (the
//! paper's randomized initialization), then replays a write-heavy phase and
//! periodically prints how many live blocks the memoization table covers
//! and the running memoization hit rate — the "self-reinforcing" curve.
//!
//! ```text
//! cargo run --release --example memoization_dynamics
//! ```

use rmcc::core::rmcc::{Rmcc, RmccConfig};
use rmcc::secmem::counters::CounterOrg;
use rmcc::secmem::tree::{InitPolicy, MetadataState};

fn main() {
    let org = CounterOrg::Morphable128;
    let mut meta = MetadataState::new(org, 1 << 30, InitPolicy::Randomized { seed: 42 });
    let mut rmcc = Rmcc::new(RmccConfig::paper());

    // A working set of 4 096 blocks spread over 32 pages, written in a
    // hot/cold mix: 10% of blocks take 70% of the writes (like real
    // writeback streams).
    let blocks: Vec<u64> = (0..4096u64).map(|i| i * 7 % 4096).collect();
    let mut lookups = 0u64;
    let mut hits = 0u64;
    let mut rng = 0x1234_5678_9abc_def0u64;
    let next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    println!(
        "{:>8} {:>14} {:>12} {:>16}",
        "writes", "table-covered", "hit-rate", "max-ctr-in-table"
    );
    let mut rng_next = next;
    for step in 0..200_000u64 {
        let r = rng_next();
        let b = if r % 10 < 7 {
            blocks[(r % 410) as usize] // hot set
        } else {
            blocks[(r % 4096) as usize]
        };
        let idx = meta.layout().l0_index(b);
        let slot = meta.layout().l0_slot(b);

        // Read-side: the MC looks the value up before the writeback.
        let value = meta.block(0, idx).value(slot);
        rmcc.note_system_max(meta.max_observed());
        if rmcc.lookup(0, value).is_hit() {
            hits += 1;
        }
        lookups += 1;
        rmcc.on_memory_access();

        // Write-side: memoization-aware counter update.
        meta.with_block_mut(0, idx, |cb| {
            let _ = rmcc.update_counter(0, cb, slot, false);
        });

        if step.is_power_of_two() && step >= 1024 || step == 199_999 {
            let hist = meta.value_histogram();
            let covered: u64 = rmcc
                .table(0)
                .groups()
                .iter()
                .flat_map(|g| (g.start..g.start + 8).collect::<Vec<_>>())
                .map(|v| hist.get(&v).copied().unwrap_or(0))
                .sum();
            println!(
                "{:>8} {:>14} {:>11.1}% {:>16}",
                step,
                covered,
                100.0 * hits as f64 / lookups as f64,
                rmcc.table(0).max_counter_in_table().unwrap_or(0)
            );
        }
    }
    println!(
        "\nfinal: {} groups live, {} total lookups, {:.1}% lifetime hit rate",
        rmcc.table(0).groups().len(),
        lookups,
        100.0 * hits as f64 / lookups as f64
    );
    println!("The hit rate climbing toward ~100% as counters conform is exactly");
    println!("the paper's Challenge-1/2/3 resolution (§IV-B).");
}
