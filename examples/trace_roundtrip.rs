//! Record-once / replay-many for the serving corpus: stream the small
//! key-value serving scenario to a compact on-disk trace, replay the file
//! through the sharded service, and prove the replay is byte-identical to
//! the live run — same telemetry JSONL, same result checksum — at a few
//! encoded bytes per event.
//!
//! ```text
//! cargo run --release --example trace_roundtrip
//! ```

use rmcc::sim::service_run::{run_service, run_service_from, ServiceRunConfig};
use rmcc::workloads::codec::{reader_from_path, record_to_path};

/// The pinned telemetry fixture of the small run (also pinned by
/// `tests/service_properties.rs`), so CI can diff the replayed telemetry
/// against a checked-in golden, not just against this process's live run.
const GOLDEN: &str = include_str!("../tests/golden/service_run_small.jsonl");

fn main() {
    let cfg = ServiceRunConfig::small();
    let scenario = cfg.corpus_scenario();
    println!(
        "scenario: {} ({} events, seed {:#x})",
        scenario.name(),
        cfg.events(),
        cfg.seed
    );

    println!("\n1. live run through the 4-shard service…");
    let live = run_service(&cfg);
    println!(
        "   {} accesses, checksum {:#018x}",
        live.accesses, live.checksum
    );
    assert_eq!(
        live.jsonl, GOLDEN,
        "live telemetry drifted from tests/golden/service_run_small.jsonl"
    );

    let path = std::env::temp_dir().join("rmcc_trace_roundtrip.trc");
    println!("\n2. recording the scenario to {}…", path.display());
    let summary =
        record_to_path(&path, &mut cfg.corpus_scenario()).expect("recording cannot fail on tmpfs");
    println!(
        "   {} events in {} bytes = {:.2} bytes/event (payload {:.2})",
        summary.events,
        summary.total_bytes(),
        summary.total_bytes() as f64 / summary.events.max(1) as f64,
        summary.bytes_per_event()
    );
    assert!(
        summary.bytes_per_event() <= 4.0,
        "encoding regressed past 4 bytes/event: {:.2}",
        summary.bytes_per_event()
    );

    println!("\n3. replaying the recorded file through a fresh service…");
    let mut reader = reader_from_path(&path).expect("recorded file opens");
    let replayed = run_service_from(&cfg, &mut reader);
    assert!(
        reader.error().is_none(),
        "replay hit a codec error: {:?}",
        reader.error()
    );
    assert_eq!(
        replayed.checksum, live.checksum,
        "replayed result checksum diverged from the live run"
    );
    assert_eq!(
        replayed.jsonl, live.jsonl,
        "replayed telemetry diverged from the live run"
    );
    assert_eq!(
        replayed.jsonl, GOLDEN,
        "replayed telemetry drifted from golden"
    );
    assert_eq!(replayed, live, "full replayed result diverged");
    println!(
        "   checksum {:#018x} and {}-row telemetry JSONL match the live run and the golden fixture",
        replayed.checksum,
        replayed.jsonl.lines().count()
    );

    let _ = std::fs::remove_file(&path);
    println!("\ntrace-roundtrip-ok");
}
