//! Graph analytics under secure memory — the paper's motivating scenario.
//!
//! Runs real graph kernels (BFS and PageRank over an R-MAT graph) through
//! the detailed timing simulator under four memory systems and prints the
//! slowdown each one pays, plus where RMCC claws performance back.
//!
//! ```text
//! cargo run --release --example graph_analytics [tiny|small]
//! ```

use rmcc::sim::config::{Scheme, SystemConfig};
use rmcc::sim::detailed::run_detailed;
use rmcc::workloads::workload::{graph_for, Scale, Workload};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        _ => Scale::Tiny,
    };
    println!("building R-MAT graph at scale {scale}…");
    let graph = graph_for(scale);
    println!(
        "graph: {} vertices, {} directed edges\n",
        graph.n_vertices(),
        graph.n_edges()
    );

    for workload in [Workload::Bfs, Workload::PageRank] {
        println!("── {workload} ──");
        let non = run_detailed(
            workload,
            scale,
            Some(&graph),
            &SystemConfig::table1(Scheme::NonSecure),
        )
        .expect("graph supplied");
        println!(
            "  {:<11} {:>9.2} µs   LLC-miss latency {:>6.1} ns   (baseline)",
            Scheme::NonSecure.to_string(),
            non.elapsed_ps as f64 / 1e6,
            non.mean_miss_latency_ns
        );
        for scheme in [Scheme::Sc64, Scheme::Morphable, Scheme::Rmcc] {
            let r = run_detailed(workload, scale, Some(&graph), &SystemConfig::table1(scheme))
                .expect("graph supplied");
            println!(
                "  {:<11} {:>9.2} µs   LLC-miss latency {:>6.1} ns   perf vs non-secure {:>5.1}%   ctr-miss rate {:>5.1}%",
                scheme.to_string(),
                r.elapsed_ps as f64 / 1e6,
                r.mean_miss_latency_ns,
                100.0 * r.normalized_perf(&non),
                100.0 * r.meta.counter_miss_rate(),
            );
        }
        println!();
    }
    println!("RMCC's gap over Morphable is the paper's Figure 13; it widens with");
    println!("irregularity (BFS) and with AES latency (see the fig17 bench target).");
}
