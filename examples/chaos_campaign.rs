//! Seeded shard-lifecycle chaos campaign against the sharded service.
//!
//! Rotates five fault classes (policy panic, counter saturation, whole-table
//! memo poison, node-image replay, forged counter blocks) across the shards
//! of a health-enabled [`SecureMemoryService`] under mixed zipfian load,
//! alongside a never-faulted control twin. Exits nonzero if any victim shard
//! fails to quarantine, fails to recover to `Healthy`, leaks the fault into
//! another shard's results, or ends with state diverging from the twin.
//!
//! ```text
//! cargo run --release --example chaos_campaign -- [--shards N] [--seed S]
//! ```
//!
//! Defaults: 4 shards, seed 0x524d4343 ("RMCC"). The whole run is determined
//! by the seed, so a CI failure reproduces with one command.
//!
//! [`SecureMemoryService`]: rmcc::secmem::service::SecureMemoryService

use std::process::ExitCode;

use rmcc::faults::{run_chaos_campaign, ChaosConfig};

fn parse_args() -> Result<(usize, u64), String> {
    let mut shards = 4usize;
    let mut seed = 0x524d_4343u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<u64, String> {
            let raw = args.next().ok_or_else(|| format!("{name} needs a value"))?;
            raw.parse::<u64>()
                .map_err(|e| format!("{name} {raw:?}: {e}"))
        };
        match arg.as_str() {
            "--shards" => shards = value("--shards")?.clamp(1, 64) as usize,
            "--seed" => seed = value("--seed")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok((shards, seed))
}

fn main() -> ExitCode {
    let (shards, seed) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: chaos_campaign [--shards N] [--seed S]");
            return ExitCode::FAILURE;
        }
    };

    // The panic-fuse class *injects* a policy panic that the service
    // contains per entry; silence the default hook's backtrace spam so the
    // campaign output stays a clean line-per-class report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let cfg = ChaosConfig::new(shards, seed);
    let report = run_chaos_campaign(&cfg);

    std::panic::set_hook(default_hook);

    println!("chaos campaign: {shards} shards, seed {seed:#x}");
    println!("{report}");
    if report.recovery_ok() {
        println!(
            "chaos verdict: recovery-ok (all shards healthy, rebuilt state \
             byte-identical to control twin)"
        );
        ExitCode::SUCCESS
    } else {
        println!("chaos verdict: FAIL");
        ExitCode::FAILURE
    }
}
