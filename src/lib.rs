//! # RMCC — Self-Reinforcing Memoization for Cryptography Calculations
//!
//! A full-system reproduction of *Wang, Talapkaliyev, Hicks, Jian —
//! "Self-Reinforcing Memoization for Cryptography Calculations in Secure
//! Memory Systems"* (MICRO 2022), built from scratch in Rust: the
//! cryptography, the counter organizations and integrity tree, the DDR4 and
//! cache models, the workloads, the RMCC mechanism itself, and a benchmark
//! harness that regenerates every figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the whole stack under one name.
//!
//! | Module | Crate | What it provides |
//! |---|---|---|
//! | [`crypto`] | `rmcc-crypto` | AES-128/256, carry-less multiply, OTP pipelines, MACs, NIST STS |
//! | [`cache`] | `rmcc-cache` | set-associative caches, TLBs, L1/L2/LLC hierarchy |
//! | [`dram`] | `rmcc-dram` | DDR4 channel timing (Table I) |
//! | [`workloads`] | `rmcc-workloads` | instrumented GraphBig/canneal/omnetpp/mcf kernels |
//! | [`secmem`] | `rmcc-secmem` | SGX/SC-64/Morphable counters, integrity tree, functional secure memory |
//! | [`core`] | `rmcc-core` | the memoization table, budgets, candidate monitor, update policy |
//! | [`faults`] | `rmcc-faults` | seeded fault injection at every threat-model boundary + campaign driver |
//! | [`telemetry`] | `rmcc-telemetry` | deterministic metrics registry, epoch snapshots, JSONL/CSV export |
//! | [`sim`] | `rmcc-sim` | memory controller, core model, lifetime & detailed runners, experiments |
//!
//! ## Quickstart
//!
//! ```
//! use rmcc::secmem::counters::CounterOrg;
//! use rmcc::secmem::engine::{PipelineKind, SecureMemory};
//!
//! // A functional secure memory with RMCC's split-OTP pipeline.
//! let mut mem = SecureMemory::new(CounterOrg::Morphable128, 1 << 24, PipelineKind::Rmcc, 7);
//! mem.write(42, [0xc0u8; 64]).unwrap();
//! assert_eq!(mem.read(42).unwrap(), [0xc0u8; 64]);
//!
//! // Tampering is detected.
//! mem.tamper_data(42, 0, 0x01).unwrap();
//! assert!(mem.read(42).is_err());
//! ```
//!
//! ## Reproducing the paper
//!
//! Every table and figure has a harness in `rmcc-bench`
//! (`cargo bench`, or `cargo run --release -p rmcc-bench --bin figures`);
//! see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use rmcc_cache as cache;
pub use rmcc_core as core;
pub use rmcc_crypto as crypto;
pub use rmcc_dram as dram;
pub use rmcc_faults as faults;
pub use rmcc_secmem as secmem;
pub use rmcc_sim as sim;
pub use rmcc_telemetry as telemetry;
pub use rmcc_workloads as workloads;
