/root/repo/target/release/examples/quickstart-c1f2ca264349550c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c1f2ca264349550c: examples/quickstart.rs

examples/quickstart.rs:
