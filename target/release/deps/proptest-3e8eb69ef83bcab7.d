/root/repo/target/release/deps/proptest-3e8eb69ef83bcab7.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3e8eb69ef83bcab7.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3e8eb69ef83bcab7.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
