/root/repo/target/release/deps/rmcc_sim-ab34ac60fedc3abf.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/detailed.rs crates/sim/src/engine.rs crates/sim/src/experiments.rs crates/sim/src/lifetime.rs crates/sim/src/mc.rs crates/sim/src/meta_engine.rs crates/sim/src/multicore.rs crates/sim/src/page_map.rs crates/sim/src/runner.rs

/root/repo/target/release/deps/librmcc_sim-ab34ac60fedc3abf.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/detailed.rs crates/sim/src/engine.rs crates/sim/src/experiments.rs crates/sim/src/lifetime.rs crates/sim/src/mc.rs crates/sim/src/meta_engine.rs crates/sim/src/multicore.rs crates/sim/src/page_map.rs crates/sim/src/runner.rs

/root/repo/target/release/deps/librmcc_sim-ab34ac60fedc3abf.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/detailed.rs crates/sim/src/engine.rs crates/sim/src/experiments.rs crates/sim/src/lifetime.rs crates/sim/src/mc.rs crates/sim/src/meta_engine.rs crates/sim/src/multicore.rs crates/sim/src/page_map.rs crates/sim/src/runner.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/detailed.rs:
crates/sim/src/engine.rs:
crates/sim/src/experiments.rs:
crates/sim/src/lifetime.rs:
crates/sim/src/mc.rs:
crates/sim/src/meta_engine.rs:
crates/sim/src/multicore.rs:
crates/sim/src/page_map.rs:
crates/sim/src/runner.rs:
