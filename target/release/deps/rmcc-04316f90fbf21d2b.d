/root/repo/target/release/deps/rmcc-04316f90fbf21d2b.d: src/lib.rs

/root/repo/target/release/deps/librmcc-04316f90fbf21d2b.rlib: src/lib.rs

/root/repo/target/release/deps/librmcc-04316f90fbf21d2b.rmeta: src/lib.rs

src/lib.rs:
