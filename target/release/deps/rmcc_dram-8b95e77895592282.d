/root/repo/target/release/deps/rmcc_dram-8b95e77895592282.d: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs

/root/repo/target/release/deps/librmcc_dram-8b95e77895592282.rlib: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs

/root/repo/target/release/deps/librmcc_dram-8b95e77895592282.rmeta: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs

crates/dram/src/lib.rs:
crates/dram/src/channel.rs:
crates/dram/src/config.rs:
crates/dram/src/mapping.rs:
