/root/repo/target/release/deps/rmcc_core-219545e2d92e858f.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs

/root/repo/target/release/deps/librmcc_core-219545e2d92e858f.rlib: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs

/root/repo/target/release/deps/librmcc_core-219545e2d92e858f.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/budget.rs:
crates/core/src/candidates.rs:
crates/core/src/rmcc.rs:
crates/core/src/security.rs:
crates/core/src/table.rs:
