/root/repo/target/release/deps/rmcc_workloads-9429511ff9be5d77.d: crates/workloads/src/lib.rs crates/workloads/src/arena.rs crates/workloads/src/graph.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/graph.rs crates/workloads/src/kernels/spec.rs crates/workloads/src/trace.rs crates/workloads/src/workload.rs

/root/repo/target/release/deps/librmcc_workloads-9429511ff9be5d77.rlib: crates/workloads/src/lib.rs crates/workloads/src/arena.rs crates/workloads/src/graph.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/graph.rs crates/workloads/src/kernels/spec.rs crates/workloads/src/trace.rs crates/workloads/src/workload.rs

/root/repo/target/release/deps/librmcc_workloads-9429511ff9be5d77.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arena.rs crates/workloads/src/graph.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/graph.rs crates/workloads/src/kernels/spec.rs crates/workloads/src/trace.rs crates/workloads/src/workload.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arena.rs:
crates/workloads/src/graph.rs:
crates/workloads/src/kernels/mod.rs:
crates/workloads/src/kernels/graph.rs:
crates/workloads/src/kernels/spec.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/workload.rs:
