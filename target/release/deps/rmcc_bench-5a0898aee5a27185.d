/root/repo/target/release/deps/rmcc_bench-5a0898aee5a27185.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/librmcc_bench-5a0898aee5a27185.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/librmcc_bench-5a0898aee5a27185.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
