/root/repo/target/release/deps/figures-f946460051549024.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-f946460051549024: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
