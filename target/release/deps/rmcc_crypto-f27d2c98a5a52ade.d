/root/repo/target/release/deps/rmcc_crypto-f27d2c98a5a52ade.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs

/root/repo/target/release/deps/librmcc_crypto-f27d2c98a5a52ade.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs

/root/repo/target/release/deps/librmcc_crypto-f27d2c98a5a52ade.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/clmul.rs:
crates/crypto/src/mac.rs:
crates/crypto/src/nist.rs:
crates/crypto/src/otp.rs:
