/root/repo/target/release/deps/rmcc_secmem-d23981172b3f34c7.d: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs

/root/repo/target/release/deps/librmcc_secmem-d23981172b3f34c7.rlib: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs

/root/repo/target/release/deps/librmcc_secmem-d23981172b3f34c7.rmeta: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs

crates/secmem/src/lib.rs:
crates/secmem/src/counters.rs:
crates/secmem/src/engine.rs:
crates/secmem/src/layout.rs:
crates/secmem/src/tree.rs:
