/root/repo/target/release/deps/rmcc_cache-d1f856b1ecbff708.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs

/root/repo/target/release/deps/librmcc_cache-d1f856b1ecbff708.rlib: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs

/root/repo/target/release/deps/librmcc_cache-d1f856b1ecbff708.rmeta: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/tlb.rs:
