/root/repo/target/debug/deps/fig19_budget_hit-f099216974802fc6.d: crates/bench/benches/fig19_budget_hit.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_budget_hit-f099216974802fc6.rmeta: crates/bench/benches/fig19_budget_hit.rs Cargo.toml

crates/bench/benches/fig19_budget_hit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
