/root/repo/target/debug/deps/rmcc_bench-9dca35daf027646b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/rmcc_bench-9dca35daf027646b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
