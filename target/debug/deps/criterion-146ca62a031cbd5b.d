/root/repo/target/debug/deps/criterion-146ca62a031cbd5b.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-146ca62a031cbd5b.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
