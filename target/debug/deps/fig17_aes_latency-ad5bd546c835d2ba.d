/root/repo/target/debug/deps/fig17_aes_latency-ad5bd546c835d2ba.d: crates/bench/benches/fig17_aes_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_aes_latency-ad5bd546c835d2ba.rmeta: crates/bench/benches/fig17_aes_latency.rs Cargo.toml

crates/bench/benches/fig17_aes_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
