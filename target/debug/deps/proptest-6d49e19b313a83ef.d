/root/repo/target/debug/deps/proptest-6d49e19b313a83ef.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6d49e19b313a83ef.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6d49e19b313a83ef.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
