/root/repo/target/debug/deps/properties-89ca91dbe3968146.d: crates/dram/tests/properties.rs

/root/repo/target/debug/deps/properties-89ca91dbe3968146: crates/dram/tests/properties.rs

crates/dram/tests/properties.rs:
