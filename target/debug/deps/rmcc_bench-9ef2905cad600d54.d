/root/repo/target/debug/deps/rmcc_bench-9ef2905cad600d54.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_bench-9ef2905cad600d54.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
