/root/repo/target/debug/deps/streaming-46f912cb3d362ace.d: tests/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming-46f912cb3d362ace.rmeta: tests/streaming.rs Cargo.toml

tests/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
