/root/repo/target/debug/deps/properties-8b7595becc708cf2.d: crates/workloads/tests/properties.rs

/root/repo/target/debug/deps/properties-8b7595becc708cf2: crates/workloads/tests/properties.rs

crates/workloads/tests/properties.rs:
