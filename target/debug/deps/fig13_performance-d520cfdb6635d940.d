/root/repo/target/debug/deps/fig13_performance-d520cfdb6635d940.d: crates/bench/benches/fig13_performance.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_performance-d520cfdb6635d940.rmeta: crates/bench/benches/fig13_performance.rs Cargo.toml

crates/bench/benches/fig13_performance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
