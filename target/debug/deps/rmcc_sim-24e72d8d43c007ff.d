/root/repo/target/debug/deps/rmcc_sim-24e72d8d43c007ff.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/detailed.rs crates/sim/src/engine.rs crates/sim/src/experiments.rs crates/sim/src/lifetime.rs crates/sim/src/mc.rs crates/sim/src/meta_engine.rs crates/sim/src/multicore.rs crates/sim/src/page_map.rs crates/sim/src/runner.rs

/root/repo/target/debug/deps/librmcc_sim-24e72d8d43c007ff.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/detailed.rs crates/sim/src/engine.rs crates/sim/src/experiments.rs crates/sim/src/lifetime.rs crates/sim/src/mc.rs crates/sim/src/meta_engine.rs crates/sim/src/multicore.rs crates/sim/src/page_map.rs crates/sim/src/runner.rs

/root/repo/target/debug/deps/librmcc_sim-24e72d8d43c007ff.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/detailed.rs crates/sim/src/engine.rs crates/sim/src/experiments.rs crates/sim/src/lifetime.rs crates/sim/src/mc.rs crates/sim/src/meta_engine.rs crates/sim/src/multicore.rs crates/sim/src/page_map.rs crates/sim/src/runner.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/detailed.rs:
crates/sim/src/engine.rs:
crates/sim/src/experiments.rs:
crates/sim/src/lifetime.rs:
crates/sim/src/mc.rs:
crates/sim/src/meta_engine.rs:
crates/sim/src/multicore.rs:
crates/sim/src/page_map.rs:
crates/sim/src/runner.rs:
