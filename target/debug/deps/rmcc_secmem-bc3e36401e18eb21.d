/root/repo/target/debug/deps/rmcc_secmem-bc3e36401e18eb21.d: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_secmem-bc3e36401e18eb21.rmeta: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs Cargo.toml

crates/secmem/src/lib.rs:
crates/secmem/src/counters.rs:
crates/secmem/src/engine.rs:
crates/secmem/src/layout.rs:
crates/secmem/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
