/root/repo/target/debug/deps/table1_config-c23037b09eb0ea16.d: crates/bench/benches/table1_config.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_config-c23037b09eb0ea16.rmeta: crates/bench/benches/table1_config.rs Cargo.toml

crates/bench/benches/table1_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
