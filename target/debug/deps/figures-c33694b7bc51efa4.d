/root/repo/target/debug/deps/figures-c33694b7bc51efa4.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-c33694b7bc51efa4.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
