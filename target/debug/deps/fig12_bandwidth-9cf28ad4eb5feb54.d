/root/repo/target/debug/deps/fig12_bandwidth-9cf28ad4eb5feb54.d: crates/bench/benches/fig12_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_bandwidth-9cf28ad4eb5feb54.rmeta: crates/bench/benches/fig12_bandwidth.rs Cargo.toml

crates/bench/benches/fig12_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
