/root/repo/target/debug/deps/rmcc_crypto-62d66bd478e21000.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_crypto-62d66bd478e21000.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/clmul.rs:
crates/crypto/src/mac.rs:
crates/crypto/src/nist.rs:
crates/crypto/src/otp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
