/root/repo/target/debug/deps/rmcc_dram-fcc892a35f671f4d.d: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_dram-fcc892a35f671f4d.rmeta: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs Cargo.toml

crates/dram/src/lib.rs:
crates/dram/src/channel.rs:
crates/dram/src/config.rs:
crates/dram/src/mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
