/root/repo/target/debug/deps/rmcc_cache-b64511a862a504e6.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs

/root/repo/target/debug/deps/librmcc_cache-b64511a862a504e6.rlib: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs

/root/repo/target/debug/deps/librmcc_cache-b64511a862a504e6.rmeta: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/tlb.rs:
