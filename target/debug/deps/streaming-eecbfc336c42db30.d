/root/repo/target/debug/deps/streaming-eecbfc336c42db30.d: tests/streaming.rs

/root/repo/target/debug/deps/streaming-eecbfc336c42db30: tests/streaming.rs

tests/streaming.rs:
