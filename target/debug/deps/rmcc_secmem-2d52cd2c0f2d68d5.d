/root/repo/target/debug/deps/rmcc_secmem-2d52cd2c0f2d68d5.d: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs

/root/repo/target/debug/deps/rmcc_secmem-2d52cd2c0f2d68d5: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs

crates/secmem/src/lib.rs:
crates/secmem/src/counters.rs:
crates/secmem/src/engine.rs:
crates/secmem/src/layout.rs:
crates/secmem/src/tree.rs:
