/root/repo/target/debug/deps/figures-0e58f4104e1b5012.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-0e58f4104e1b5012: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
