/root/repo/target/debug/deps/fig16_traffic-c6180b33c4a8ed28.d: crates/bench/benches/fig16_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_traffic-c6180b33c4a8ed28.rmeta: crates/bench/benches/fig16_traffic.rs Cargo.toml

crates/bench/benches/fig16_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
