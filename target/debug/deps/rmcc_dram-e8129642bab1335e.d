/root/repo/target/debug/deps/rmcc_dram-e8129642bab1335e.d: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_dram-e8129642bab1335e.rmeta: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs Cargo.toml

crates/dram/src/lib.rs:
crates/dram/src/channel.rs:
crates/dram/src/config.rs:
crates/dram/src/mapping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
