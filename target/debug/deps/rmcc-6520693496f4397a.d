/root/repo/target/debug/deps/rmcc-6520693496f4397a.d: src/lib.rs

/root/repo/target/debug/deps/librmcc-6520693496f4397a.rlib: src/lib.rs

/root/repo/target/debug/deps/librmcc-6520693496f4397a.rmeta: src/lib.rs

src/lib.rs:
