/root/repo/target/debug/deps/fig03_counter_miss-192535843dc5a4c8.d: crates/bench/benches/fig03_counter_miss.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_counter_miss-192535843dc5a4c8.rmeta: crates/bench/benches/fig03_counter_miss.rs Cargo.toml

crates/bench/benches/fig03_counter_miss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
