/root/repo/target/debug/deps/properties-edc77bb682183269.d: crates/cache/tests/properties.rs

/root/repo/target/debug/deps/properties-edc77bb682183269: crates/cache/tests/properties.rs

crates/cache/tests/properties.rs:
