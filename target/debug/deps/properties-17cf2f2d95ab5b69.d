/root/repo/target/debug/deps/properties-17cf2f2d95ab5b69.d: crates/cache/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-17cf2f2d95ab5b69.rmeta: crates/cache/tests/properties.rs Cargo.toml

crates/cache/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
