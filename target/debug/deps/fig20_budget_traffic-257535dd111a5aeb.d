/root/repo/target/debug/deps/fig20_budget_traffic-257535dd111a5aeb.d: crates/bench/benches/fig20_budget_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libfig20_budget_traffic-257535dd111a5aeb.rmeta: crates/bench/benches/fig20_budget_traffic.rs Cargo.toml

crates/bench/benches/fig20_budget_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
