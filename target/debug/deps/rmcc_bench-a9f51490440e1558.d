/root/repo/target/debug/deps/rmcc_bench-a9f51490440e1558.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_bench-a9f51490440e1558.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
