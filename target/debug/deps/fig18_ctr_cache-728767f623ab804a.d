/root/repo/target/debug/deps/fig18_ctr_cache-728767f623ab804a.d: crates/bench/benches/fig18_ctr_cache.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_ctr_cache-728767f623ab804a.rmeta: crates/bench/benches/fig18_ctr_cache.rs Cargo.toml

crates/bench/benches/fig18_ctr_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
