/root/repo/target/debug/deps/fig14_miss_latency-13e64bcd53d8f443.d: crates/bench/benches/fig14_miss_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_miss_latency-13e64bcd53d8f443.rmeta: crates/bench/benches/fig14_miss_latency.rs Cargo.toml

crates/bench/benches/fig14_miss_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
