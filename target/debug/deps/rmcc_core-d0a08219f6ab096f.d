/root/repo/target/debug/deps/rmcc_core-d0a08219f6ab096f.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_core-d0a08219f6ab096f.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/budget.rs:
crates/core/src/candidates.rs:
crates/core/src/rmcc.rs:
crates/core/src/security.rs:
crates/core/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
