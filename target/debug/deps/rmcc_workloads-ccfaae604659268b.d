/root/repo/target/debug/deps/rmcc_workloads-ccfaae604659268b.d: crates/workloads/src/lib.rs crates/workloads/src/arena.rs crates/workloads/src/graph.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/graph.rs crates/workloads/src/kernels/spec.rs crates/workloads/src/trace.rs crates/workloads/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_workloads-ccfaae604659268b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arena.rs crates/workloads/src/graph.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/graph.rs crates/workloads/src/kernels/spec.rs crates/workloads/src/trace.rs crates/workloads/src/workload.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/arena.rs:
crates/workloads/src/graph.rs:
crates/workloads/src/kernels/mod.rs:
crates/workloads/src/kernels/graph.rs:
crates/workloads/src/kernels/spec.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
