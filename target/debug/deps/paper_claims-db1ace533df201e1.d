/root/repo/target/debug/deps/paper_claims-db1ace533df201e1.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-db1ace533df201e1: tests/paper_claims.rs

tests/paper_claims.rs:
