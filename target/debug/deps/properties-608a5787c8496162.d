/root/repo/target/debug/deps/properties-608a5787c8496162.d: tests/properties.rs

/root/repo/target/debug/deps/properties-608a5787c8496162: tests/properties.rs

tests/properties.rs:
