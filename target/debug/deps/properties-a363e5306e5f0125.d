/root/repo/target/debug/deps/properties-a363e5306e5f0125.d: crates/dram/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a363e5306e5f0125.rmeta: crates/dram/tests/properties.rs Cargo.toml

crates/dram/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
