/root/repo/target/debug/deps/rmcc_core-99c3e92a6f8b5f54.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs

/root/repo/target/debug/deps/rmcc_core-99c3e92a6f8b5f54: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/budget.rs:
crates/core/src/candidates.rs:
crates/core/src/rmcc.rs:
crates/core/src/security.rs:
crates/core/src/table.rs:
