/root/repo/target/debug/deps/accelerated_misses-a1083ee1a4c5b061.d: crates/bench/benches/accelerated_misses.rs Cargo.toml

/root/repo/target/debug/deps/libaccelerated_misses-a1083ee1a4c5b061.rmeta: crates/bench/benches/accelerated_misses.rs Cargo.toml

crates/bench/benches/accelerated_misses.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
