/root/repo/target/debug/deps/sim_consistency-b1bb7764c43b88f8.d: tests/sim_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libsim_consistency-b1bb7764c43b88f8.rmeta: tests/sim_consistency.rs Cargo.toml

tests/sim_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
