/root/repo/target/debug/deps/rmcc-df7c94c26d434dbe.d: src/lib.rs

/root/repo/target/debug/deps/rmcc-df7c94c26d434dbe: src/lib.rs

src/lib.rs:
