/root/repo/target/debug/deps/rmcc-8a560ba310c7a022.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librmcc-8a560ba310c7a022.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
