/root/repo/target/debug/deps/fig10_hit_breakdown-8f30aebf25fa2314.d: crates/bench/benches/fig10_hit_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_hit_breakdown-8f30aebf25fa2314.rmeta: crates/bench/benches/fig10_hit_breakdown.rs Cargo.toml

crates/bench/benches/fig10_hit_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
