/root/repo/target/debug/deps/stateful-7af1735a9eb2576f.d: crates/secmem/tests/stateful.rs Cargo.toml

/root/repo/target/debug/deps/libstateful-7af1735a9eb2576f.rmeta: crates/secmem/tests/stateful.rs Cargo.toml

crates/secmem/tests/stateful.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
