/root/repo/target/debug/deps/stateful-0cb42f85766ecd36.d: crates/secmem/tests/stateful.rs

/root/repo/target/debug/deps/stateful-0cb42f85766ecd36: crates/secmem/tests/stateful.rs

crates/secmem/tests/stateful.rs:
