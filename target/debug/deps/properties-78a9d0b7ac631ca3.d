/root/repo/target/debug/deps/properties-78a9d0b7ac631ca3.d: crates/workloads/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-78a9d0b7ac631ca3.rmeta: crates/workloads/tests/properties.rs Cargo.toml

crates/workloads/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
