/root/repo/target/debug/deps/fig21_group_hit-8a065f3914bafd82.d: crates/bench/benches/fig21_group_hit.rs Cargo.toml

/root/repo/target/debug/deps/libfig21_group_hit-8a065f3914bafd82.rmeta: crates/bench/benches/fig21_group_hit.rs Cargo.toml

crates/bench/benches/fig21_group_hit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
