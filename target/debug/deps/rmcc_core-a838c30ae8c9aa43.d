/root/repo/target/debug/deps/rmcc_core-a838c30ae8c9aa43.d: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs

/root/repo/target/debug/deps/librmcc_core-a838c30ae8c9aa43.rlib: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs

/root/repo/target/debug/deps/librmcc_core-a838c30ae8c9aa43.rmeta: crates/core/src/lib.rs crates/core/src/area.rs crates/core/src/budget.rs crates/core/src/candidates.rs crates/core/src/rmcc.rs crates/core/src/security.rs crates/core/src/table.rs

crates/core/src/lib.rs:
crates/core/src/area.rs:
crates/core/src/budget.rs:
crates/core/src/candidates.rs:
crates/core/src/rmcc.rs:
crates/core/src/security.rs:
crates/core/src/table.rs:
