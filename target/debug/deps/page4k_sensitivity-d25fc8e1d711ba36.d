/root/repo/target/debug/deps/page4k_sensitivity-d25fc8e1d711ba36.d: crates/bench/benches/page4k_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libpage4k_sensitivity-d25fc8e1d711ba36.rmeta: crates/bench/benches/page4k_sensitivity.rs Cargo.toml

crates/bench/benches/page4k_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
