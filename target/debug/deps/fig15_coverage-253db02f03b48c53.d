/root/repo/target/debug/deps/fig15_coverage-253db02f03b48c53.d: crates/bench/benches/fig15_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_coverage-253db02f03b48c53.rmeta: crates/bench/benches/fig15_coverage.rs Cargo.toml

crates/bench/benches/fig15_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
