/root/repo/target/debug/deps/probe-525f9b0ecda07865.d: crates/bench/src/bin/probe.rs Cargo.toml

/root/repo/target/debug/deps/libprobe-525f9b0ecda07865.rmeta: crates/bench/src/bin/probe.rs Cargo.toml

crates/bench/src/bin/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
