/root/repo/target/debug/deps/ablation_read_triggered-066049cc2c2eef49.d: crates/bench/benches/ablation_read_triggered.rs Cargo.toml

/root/repo/target/debug/deps/libablation_read_triggered-066049cc2c2eef49.rmeta: crates/bench/benches/ablation_read_triggered.rs Cargo.toml

crates/bench/benches/ablation_read_triggered.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
