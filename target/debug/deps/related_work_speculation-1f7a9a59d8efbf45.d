/root/repo/target/debug/deps/related_work_speculation-1f7a9a59d8efbf45.d: crates/bench/benches/related_work_speculation.rs Cargo.toml

/root/repo/target/debug/deps/librelated_work_speculation-1f7a9a59d8efbf45.rmeta: crates/bench/benches/related_work_speculation.rs Cargo.toml

crates/bench/benches/related_work_speculation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
