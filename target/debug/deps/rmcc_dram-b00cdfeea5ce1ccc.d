/root/repo/target/debug/deps/rmcc_dram-b00cdfeea5ce1ccc.d: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs

/root/repo/target/debug/deps/librmcc_dram-b00cdfeea5ce1ccc.rlib: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs

/root/repo/target/debug/deps/librmcc_dram-b00cdfeea5ce1ccc.rmeta: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs

crates/dram/src/lib.rs:
crates/dram/src/channel.rs:
crates/dram/src/config.rs:
crates/dram/src/mapping.rs:
