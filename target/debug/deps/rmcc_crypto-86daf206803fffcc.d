/root/repo/target/debug/deps/rmcc_crypto-86daf206803fffcc.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs

/root/repo/target/debug/deps/rmcc_crypto-86daf206803fffcc: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/clmul.rs:
crates/crypto/src/mac.rs:
crates/crypto/src/nist.rs:
crates/crypto/src/otp.rs:
