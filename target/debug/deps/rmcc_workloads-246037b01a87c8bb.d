/root/repo/target/debug/deps/rmcc_workloads-246037b01a87c8bb.d: crates/workloads/src/lib.rs crates/workloads/src/arena.rs crates/workloads/src/graph.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/graph.rs crates/workloads/src/kernels/spec.rs crates/workloads/src/trace.rs crates/workloads/src/workload.rs

/root/repo/target/debug/deps/rmcc_workloads-246037b01a87c8bb: crates/workloads/src/lib.rs crates/workloads/src/arena.rs crates/workloads/src/graph.rs crates/workloads/src/kernels/mod.rs crates/workloads/src/kernels/graph.rs crates/workloads/src/kernels/spec.rs crates/workloads/src/trace.rs crates/workloads/src/workload.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arena.rs:
crates/workloads/src/graph.rs:
crates/workloads/src/kernels/mod.rs:
crates/workloads/src/kernels/graph.rs:
crates/workloads/src/kernels/spec.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/workload.rs:
