/root/repo/target/debug/deps/rmcc_cache-44d9c291cc0e24c6.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_cache-44d9c291cc0e24c6.rmeta: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
