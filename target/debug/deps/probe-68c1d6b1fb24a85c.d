/root/repo/target/debug/deps/probe-68c1d6b1fb24a85c.d: crates/bench/src/bin/probe.rs

/root/repo/target/debug/deps/probe-68c1d6b1fb24a85c: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
