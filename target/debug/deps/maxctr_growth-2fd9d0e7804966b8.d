/root/repo/target/debug/deps/maxctr_growth-2fd9d0e7804966b8.d: crates/bench/benches/maxctr_growth.rs Cargo.toml

/root/repo/target/debug/deps/libmaxctr_growth-2fd9d0e7804966b8.rmeta: crates/bench/benches/maxctr_growth.rs Cargo.toml

crates/bench/benches/maxctr_growth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
