/root/repo/target/debug/deps/rmcc_crypto-9e913aaa81d846aa.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs

/root/repo/target/debug/deps/librmcc_crypto-9e913aaa81d846aa.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs

/root/repo/target/debug/deps/librmcc_crypto-9e913aaa81d846aa.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/clmul.rs crates/crypto/src/mac.rs crates/crypto/src/nist.rs crates/crypto/src/otp.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/clmul.rs:
crates/crypto/src/mac.rs:
crates/crypto/src/nist.rs:
crates/crypto/src/otp.rs:
