/root/repo/target/debug/deps/end_to_end-5c0e68f84c5778f4.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5c0e68f84c5778f4: tests/end_to_end.rs

tests/end_to_end.rs:
