/root/repo/target/debug/deps/rmcc_cache-82e41a44f126f741.d: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs

/root/repo/target/debug/deps/rmcc_cache-82e41a44f126f741: crates/cache/src/lib.rs crates/cache/src/hierarchy.rs crates/cache/src/set_assoc.rs crates/cache/src/tlb.rs

crates/cache/src/lib.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/tlb.rs:
