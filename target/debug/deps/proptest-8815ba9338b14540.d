/root/repo/target/debug/deps/proptest-8815ba9338b14540.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8815ba9338b14540.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
