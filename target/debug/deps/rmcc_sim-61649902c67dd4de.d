/root/repo/target/debug/deps/rmcc_sim-61649902c67dd4de.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/detailed.rs crates/sim/src/engine.rs crates/sim/src/experiments.rs crates/sim/src/lifetime.rs crates/sim/src/mc.rs crates/sim/src/meta_engine.rs crates/sim/src/multicore.rs crates/sim/src/page_map.rs crates/sim/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/librmcc_sim-61649902c67dd4de.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/core_model.rs crates/sim/src/detailed.rs crates/sim/src/engine.rs crates/sim/src/experiments.rs crates/sim/src/lifetime.rs crates/sim/src/mc.rs crates/sim/src/meta_engine.rs crates/sim/src/multicore.rs crates/sim/src/page_map.rs crates/sim/src/runner.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/core_model.rs:
crates/sim/src/detailed.rs:
crates/sim/src/engine.rs:
crates/sim/src/experiments.rs:
crates/sim/src/lifetime.rs:
crates/sim/src/mc.rs:
crates/sim/src/meta_engine.rs:
crates/sim/src/multicore.rs:
crates/sim/src/page_map.rs:
crates/sim/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
