/root/repo/target/debug/deps/sim_consistency-7b942a322430f7b5.d: tests/sim_consistency.rs

/root/repo/target/debug/deps/sim_consistency-7b942a322430f7b5: tests/sim_consistency.rs

tests/sim_consistency.rs:
