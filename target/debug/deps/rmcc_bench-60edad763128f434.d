/root/repo/target/debug/deps/rmcc_bench-60edad763128f434.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librmcc_bench-60edad763128f434.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librmcc_bench-60edad763128f434.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
