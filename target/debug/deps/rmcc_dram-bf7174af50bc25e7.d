/root/repo/target/debug/deps/rmcc_dram-bf7174af50bc25e7.d: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs

/root/repo/target/debug/deps/rmcc_dram-bf7174af50bc25e7: crates/dram/src/lib.rs crates/dram/src/channel.rs crates/dram/src/config.rs crates/dram/src/mapping.rs

crates/dram/src/lib.rs:
crates/dram/src/channel.rs:
crates/dram/src/config.rs:
crates/dram/src/mapping.rs:
