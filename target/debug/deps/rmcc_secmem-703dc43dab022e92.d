/root/repo/target/debug/deps/rmcc_secmem-703dc43dab022e92.d: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs

/root/repo/target/debug/deps/librmcc_secmem-703dc43dab022e92.rlib: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs

/root/repo/target/debug/deps/librmcc_secmem-703dc43dab022e92.rmeta: crates/secmem/src/lib.rs crates/secmem/src/counters.rs crates/secmem/src/engine.rs crates/secmem/src/layout.rs crates/secmem/src/tree.rs

crates/secmem/src/lib.rs:
crates/secmem/src/counters.rs:
crates/secmem/src/engine.rs:
crates/secmem/src/layout.rs:
crates/secmem/src/tree.rs:
