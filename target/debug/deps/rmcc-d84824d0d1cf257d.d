/root/repo/target/debug/deps/rmcc-d84824d0d1cf257d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librmcc-d84824d0d1cf257d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
