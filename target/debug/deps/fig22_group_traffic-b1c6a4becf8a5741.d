/root/repo/target/debug/deps/fig22_group_traffic-b1c6a4becf8a5741.d: crates/bench/benches/fig22_group_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libfig22_group_traffic-b1c6a4becf8a5741.rmeta: crates/bench/benches/fig22_group_traffic.rs Cargo.toml

crates/bench/benches/fig22_group_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
