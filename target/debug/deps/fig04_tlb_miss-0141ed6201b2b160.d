/root/repo/target/debug/deps/fig04_tlb_miss-0141ed6201b2b160.d: crates/bench/benches/fig04_tlb_miss.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_tlb_miss-0141ed6201b2b160.rmeta: crates/bench/benches/fig04_tlb_miss.rs Cargo.toml

crates/bench/benches/fig04_tlb_miss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
