/root/repo/target/debug/examples/attack_demo-32b41ce878f1f0d3.d: examples/attack_demo.rs Cargo.toml

/root/repo/target/debug/examples/libattack_demo-32b41ce878f1f0d3.rmeta: examples/attack_demo.rs Cargo.toml

examples/attack_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
