/root/repo/target/debug/examples/memoization_dynamics-9217a8b3172158f9.d: examples/memoization_dynamics.rs

/root/repo/target/debug/examples/memoization_dynamics-9217a8b3172158f9: examples/memoization_dynamics.rs

examples/memoization_dynamics.rs:
