/root/repo/target/debug/examples/attack_demo-9365c6ccbd250b2c.d: examples/attack_demo.rs

/root/repo/target/debug/examples/attack_demo-9365c6ccbd250b2c: examples/attack_demo.rs

examples/attack_demo.rs:
