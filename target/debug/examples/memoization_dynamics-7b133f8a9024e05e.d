/root/repo/target/debug/examples/memoization_dynamics-7b133f8a9024e05e.d: examples/memoization_dynamics.rs Cargo.toml

/root/repo/target/debug/examples/libmemoization_dynamics-7b133f8a9024e05e.rmeta: examples/memoization_dynamics.rs Cargo.toml

examples/memoization_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
