/root/repo/target/debug/examples/graph_analytics-a5baba8c6b6e9385.d: examples/graph_analytics.rs

/root/repo/target/debug/examples/graph_analytics-a5baba8c6b6e9385: examples/graph_analytics.rs

examples/graph_analytics.rs:
