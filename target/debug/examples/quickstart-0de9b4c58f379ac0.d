/root/repo/target/debug/examples/quickstart-0de9b4c58f379ac0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0de9b4c58f379ac0: examples/quickstart.rs

examples/quickstart.rs:
