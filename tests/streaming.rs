//! Tier-1 checks for the streaming trace pipeline and the parallel
//! experiment harness introduced with the unified runner API.

use rmcc::sim::config::{Scheme, SystemConfig};
use rmcc::sim::experiments::Experiments;
use rmcc::sim::lifetime::LifetimeRunner;
use rmcc::sim::runner::Runner;
use rmcc::workloads::trace::{CountingSink, TraceSource};
use rmcc::workloads::workload::{Scale, Workload};

/// Compile-time proof that the simulation state can cross threads: the
/// parallel harness moves whole runners into scoped workers.
#[test]
fn simulation_state_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<rmcc::sim::mc::MemoryController>();
    assert_send::<rmcc::sim::lifetime::LifetimeRunner>();
    assert_send::<rmcc::sim::core_model::CoreModel>();
    assert_send::<rmcc::sim::meta_engine::MetaEngine>();
    assert_send::<rmcc::dram::channel::Channel>();
}

#[test]
fn streamed_lifetime_run_sees_every_event() {
    // Stream the workload twice: once into a counting sink, once into the
    // runner. The runner must account for exactly the events the kernel
    // emitted — streaming drops or duplicates nothing.
    let mut counts = CountingSink::default();
    Workload::Canneal.source(Scale::Tiny).stream(&mut counts);

    let mut cfg = SystemConfig::lifetime(Scheme::Rmcc);
    cfg.data_bytes = 1 << 32;
    let mut runner = LifetimeRunner::new(&cfg);
    let report = runner.run(&mut Workload::Canneal.source(Scale::Tiny));

    assert!(counts.reads > 0 && counts.writes > 0);
    assert_eq!(report.accesses, counts.reads + counts.writes);
}

#[test]
fn parallel_harness_output_is_byte_identical_to_serial() {
    let serial = Experiments::with_jobs(Scale::Tiny, 1);
    let pooled = Experiments::with_jobs(Scale::Tiny, 4);
    // One lifetime-mode figure, one detailed-mode dual figure: rows must
    // match exactly (labels, order, and every f64 bit pattern).
    assert_eq!(serial.fig03_counter_miss(), pooled.fig03_counter_miss());
    let (perf_s, lat_s) = serial.fig13_fig14();
    let (perf_p, lat_p) = pooled.fig13_fig14();
    assert_eq!(perf_s, perf_p);
    assert_eq!(lat_s, lat_p);
}

/// Wall-clock speedup of the pooled harness. Runs everywhere: the timing
/// assertion gates itself on the host's advertised parallelism instead of
/// `#[ignore]`, so multicore hosts check the speedup on every run while a
/// single-core CI container still verifies pooled-equals-serial and skips
/// only the wall-clock claim.
#[test]
fn parallel_harness_speedup() {
    let serial = Experiments::with_jobs(Scale::Tiny, 1);
    let pooled = Experiments::with_jobs(Scale::Tiny, 4);
    // Warm both contexts (graph already built in the constructors).
    let t0 = std::time::Instant::now();
    let a = serial.fig13_fig14();
    let t_serial = t0.elapsed();
    let t1 = std::time::Instant::now();
    let b = pooled.fig13_fig14();
    let t_pooled = t1.elapsed();
    assert_eq!(a, b);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!(
            "parallel_harness_speedup: host exposes only {cores} core(s); \
             verified pooled == serial, skipping the wall-clock assertion"
        );
        return;
    }
    let speedup = t_serial.as_secs_f64() / t_pooled.as_secs_f64();
    // Conservative bound: 4 jobs on >= 4 cores must beat serial clearly,
    // even on a loaded host.
    assert!(speedup >= 1.3, "4-job speedup only {speedup:.2}x");
}

#[test]
fn vec_sink_replay_equals_live_stream() {
    // Record once into a VecSink, then replay it; a runner must not be able
    // to tell the difference from live kernel execution.
    let mut recorded = rmcc::workloads::trace::VecSink::default();
    Workload::Omnetpp.source(Scale::Tiny).stream(&mut recorded);

    let mut cfg = SystemConfig::lifetime(Scheme::Morphable);
    cfg.data_bytes = 1 << 32;
    let live = LifetimeRunner::new(&cfg).run(&mut Workload::Omnetpp.source(Scale::Tiny));
    let replayed = LifetimeRunner::new(&cfg).run(&mut recorded);
    assert_eq!(live, replayed);
}
