//! Seeded fault-injection campaigns over the full threat-model matrix.
//!
//! The headline robustness claim, asserted here end to end: across 10,000
//! seeded faults spanning both counter organizations of interest and both
//! OTP pipelines, every integrity-affecting fault is detected as a typed
//! `ReadError`, no fault ever yields silently wrong plaintext, and every
//! victim block reads back byte-identical to its last write once the
//! campaign ends.

use rmcc::faults::{run_campaign, CampaignConfig, CampaignReport, FaultKind};
use rmcc::secmem::counters::CounterOrg;
use rmcc::secmem::engine::PipelineKind;

/// The campaign matrix: counter organizations × OTP pipelines.
const MATRIX: [(CounterOrg, PipelineKind); 4] = [
    (CounterOrg::Morphable128, PipelineKind::Rmcc),
    (CounterOrg::Morphable128, PipelineKind::Sgx),
    (CounterOrg::Sc64, PipelineKind::Rmcc),
    (CounterOrg::Sc64, PipelineKind::Sgx),
];

fn assert_clean(report: &CampaignReport) {
    let cfg = &report.config;
    assert_eq!(
        report.total_injected(),
        cfg.faults,
        "{} / {:?}: campaign lost faults",
        cfg.org,
        cfg.pipeline
    );
    assert_eq!(
        report.silent_corruptions(),
        0,
        "{} / {:?}: silent corruption\n{report}",
        cfg.org,
        cfg.pipeline
    );
    assert!(
        report.all_integrity_faults_detected(),
        "{} / {:?}: undetected integrity fault\n{report}",
        cfg.org,
        cfg.pipeline
    );
    assert!(
        report.final_state_intact,
        "{} / {:?}: final state diverged from the shadow copy\n{report}",
        cfg.org, cfg.pipeline
    );
    // Memoization-table corruption is the one non-integrity class: it must
    // always be absorbed fail-safe, and each absorption must have charged a
    // full-AES fallback in the table stats.
    let memo = report.tally(FaultKind::MemoCorruption);
    assert_eq!(memo.fail_safe, memo.injected, "memo faults not fail-safe");
    if cfg.pipeline == PipelineKind::Rmcc {
        assert!(report.table_fallbacks >= memo.injected);
    }
}

/// 2,500 faults per (org, pipeline) cell — 10,000 total — under one fixed
/// seed, so any failure reproduces exactly.
#[test]
fn ten_thousand_seeded_faults_are_all_detected_or_fail_safe() {
    let mut total = 0;
    for (org, pipeline) in MATRIX {
        let mut cfg = CampaignConfig::new(org, pipeline);
        cfg.faults = 2_500;
        let report = run_campaign(&cfg);
        assert_clean(&report);
        // Every fault class fired in a campaign this size.
        for kind in FaultKind::ALL {
            assert!(
                report.tally(kind).injected > 0,
                "{org} / {pipeline:?}: {} never injected",
                kind.label()
            );
        }
        total += report.total_injected();
    }
    assert_eq!(total, 10_000);
}

/// Campaigns are bit-for-bit reproducible: same config, same tallies.
#[test]
fn campaigns_are_deterministic_across_runs() {
    let mut cfg = CampaignConfig::new(CounterOrg::Morphable128, PipelineKind::Rmcc);
    cfg.faults = 500;
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(a.tallies, b.tallies);
    assert_eq!(a.final_state_intact, b.final_state_intact);
    assert_eq!(a.table_fallbacks, b.table_fallbacks);
}

/// Changing the seed changes the fault schedule but never the verdict.
#[test]
fn every_seed_upholds_the_invariant() {
    for seed in 0..8 {
        let mut cfg = CampaignConfig::new(CounterOrg::Morphable128, PipelineKind::Rmcc);
        cfg.seed = 0x9e37_79b9 ^ seed;
        cfg.faults = 250;
        assert_clean(&run_campaign(&cfg));
    }
}

/// Heavier sweep for manual runs: 100k faults per cell, Mono8 included.
/// `cargo test --release --test fault_campaign -- --ignored`
#[test]
#[ignore = "stress campaign; run explicitly in release"]
fn stress_campaign_hundred_thousand_faults_per_cell() {
    for org in [
        CounterOrg::Mono8,
        CounterOrg::Sc64,
        CounterOrg::Morphable128,
    ] {
        for pipeline in [PipelineKind::Sgx, PipelineKind::Rmcc] {
            let mut cfg = CampaignConfig::new(org, pipeline);
            cfg.faults = 100_000;
            cfg.working_set = 256;
            assert_clean(&run_campaign(&cfg));
        }
    }
}
