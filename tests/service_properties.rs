//! Property and golden tests for the sharded [`SecureMemoryService`].
//!
//! Three contracts, machine-checked:
//!
//! 1. **Routing is a partition.** Every block routes to exactly one
//!    in-range shard, the choice is stable, and coverage-mates (blocks
//!    protected by the same L0 counter group) never split across shards —
//!    the invariant that keeps relevels shard-local.
//! 2. **Batched equals serial, byte for byte.** `submit` over any batch,
//!    at any shard count and worker width, returns exactly what a single
//!    serial [`SecureMemory`] engine returns for the same sequence —
//!    results *and* order-sensitive digest.
//! 3. **The golden run never drifts.** A seeded multi-tenant service run
//!    is pinned — its full telemetry JSONL (fixture file) and its result
//!    checksum. Any change to routing, batching, memoization steering, or
//!    the crypto pipeline shows up here as a diff.

use proptest::prelude::*;
use rmcc::secmem::{digest_results, serial_reference, Access, SecureMemoryService, ServiceConfig};
use rmcc::sim::service_run::{run_service, ServiceRunConfig};

/// Address space small enough to keep proptest cases fast, large enough
/// for several tree levels per shard.
const DATA_BYTES: u64 = 1 << 24;

/// Turns generated tuples into an access batch over a dense block range,
/// so every shard sees traffic and submission order matters.
fn to_batch(raw: &[(u64, bool, u8)]) -> Vec<Access> {
    raw.iter()
        .map(|&(block, is_write, fill)| {
            if is_write {
                Access::Write {
                    block,
                    data: [fill; 64],
                }
            } else {
                Access::Read { block }
            }
        })
        .collect()
}

proptest! {
    /// Every block routes to exactly one in-range shard, deterministically,
    /// and coverage-mates always land on the same shard.
    #[test]
    fn routing_is_a_stable_region_preserving_partition(
        block in 0u64..(1 << 18),
        shards in 1usize..=16,
    ) {
        let service = SecureMemoryService::new(&ServiceConfig::new(shards, DATA_BYTES));
        let snap = service.snapshot();
        let shard = snap.shard_of(block);
        prop_assert!(shard < shards, "shard {shard} out of range 0..{shards}");
        prop_assert_eq!(shard, snap.shard_of(block), "routing must be stable");
        // Every coverage-mate of `block` (same L0 region) routes identically.
        let coverage = snap.coverage().max(1);
        let first = (block / coverage) * coverage;
        for mate in first..first + coverage.min(8) {
            prop_assert_eq!(
                snap.shard_of(mate), shard,
                "coverage-mates must never split across shards"
            );
        }
    }

    /// `submit` is byte-identical to a serial single-engine execution of
    /// the same batch, for any batch, shard count, and worker width.
    #[test]
    fn submit_is_byte_identical_to_the_serial_engine(
        raw in prop::collection::vec((0u64..2048, any::<bool>(), any::<u8>()), 1..64),
        shards in 1usize..=8,
        jobs in 1usize..=4,
    ) {
        let batch = to_batch(&raw);
        let cfg = ServiceConfig::new(shards, DATA_BYTES);
        let service = SecureMemoryService::new(&cfg);
        let batched = service.submit_with_jobs(&batch, jobs);
        let serial = serial_reference(&cfg, &batch);
        prop_assert_eq!(&batched, &serial, "batched results diverged from serial");
        prop_assert_eq!(
            digest_results(&batched),
            digest_results(&serial),
            "order-sensitive digest diverged"
        );
    }

    /// Repeat submissions stay identical: the same two batches through two
    /// fresh services (different widths) give the same digests in sequence.
    #[test]
    fn resubmission_sequences_are_width_invariant(
        raw_a in prop::collection::vec((0u64..1024, any::<bool>(), any::<u8>()), 1..32),
        raw_b in prop::collection::vec((0u64..1024, any::<bool>(), any::<u8>()), 1..32),
        shards in 1usize..=6,
    ) {
        let (a, b) = (to_batch(&raw_a), to_batch(&raw_b));
        let cfg = ServiceConfig::new(shards, DATA_BYTES);
        let narrow = SecureMemoryService::new(&cfg);
        let wide = SecureMemoryService::new(&cfg);
        for batch in [&a, &b] {
            let rn = narrow.submit_with_jobs(batch, 1);
            let rw = wide.submit_with_jobs(batch, 4);
            prop_assert_eq!(digest_results(&rn), digest_results(&rw));
        }
    }
}

/// The pinned telemetry series of each seeded small service run, one per
/// corpus scenario. Regenerate only for intentional changes:
///
/// ```text
/// cargo test --test service_properties -- --ignored regenerate
/// ```
const GOLDEN_KV: &str = include_str!("golden/service_run_small.jsonl");
const GOLDEN_PHASE: &str = include_str!("golden/service_run_phase_small.jsonl");
const GOLDEN_ADVERSARIAL: &str = include_str!("golden/service_run_adversarial_small.jsonl");

/// The pinned order-sensitive result checksums of the same runs.
const GOLDEN_KV_CHECKSUM: u64 = 0x9ba6_4580_9ecb_f7a5;
const GOLDEN_PHASE_CHECKSUM: u64 = 0xff18_fe98_f8b2_08b4;
const GOLDEN_ADVERSARIAL_CHECKSUM: u64 = 0xadd4_1aa2_1e9d_1f79;

/// `(config, fixture path, pinned telemetry, pinned checksum)` per scenario.
fn golden_cases() -> [(ServiceRunConfig, &'static str, &'static str, u64); 3] {
    [
        (
            ServiceRunConfig::small(),
            "tests/golden/service_run_small.jsonl",
            GOLDEN_KV,
            GOLDEN_KV_CHECKSUM,
        ),
        (
            ServiceRunConfig::phase_small(),
            "tests/golden/service_run_phase_small.jsonl",
            GOLDEN_PHASE,
            GOLDEN_PHASE_CHECKSUM,
        ),
        (
            ServiceRunConfig::adversarial_small(),
            "tests/golden/service_run_adversarial_small.jsonl",
            GOLDEN_ADVERSARIAL,
            GOLDEN_ADVERSARIAL_CHECKSUM,
        ),
    ]
}

#[test]
fn seeded_service_runs_match_golden_fixtures() {
    for (cfg, path, golden, checksum) in golden_cases() {
        let name = cfg.corpus_scenario().name();
        let r = run_service(&cfg);
        assert_eq!(
            r.checksum, checksum,
            "{name}: service run checksum drifted: got {:#018x}",
            r.checksum
        );
        assert_eq!(
            r.jsonl, golden,
            "{name}: service telemetry drifted from {path} \
             (intentional changes must regenerate the fixture)"
        );
    }
}

#[test]
#[ignore = "writes the golden fixtures; run explicitly after intentional changes"]
fn regenerate() {
    let mut checksums = String::new();
    for (cfg, path, _, _) in golden_cases() {
        let r = run_service(&cfg);
        std::fs::write(path, &r.jsonl).unwrap_or_else(|e| panic!("cannot write fixture: {e}"));
        checksums.push_str(&format!(
            "\n  {}: {:#018x}",
            cfg.corpus_scenario().name(),
            r.checksum
        ));
    }
    panic!("fixtures regenerated; update the pinned checksums to:{checksums}\nand rerun");
}
