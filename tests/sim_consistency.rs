//! Cross-mode consistency: the lifetime (functional) and detailed (timing)
//! runners share one metadata engine, so their *functional* statistics must
//! agree exactly when driven by the same trace and configuration.

use rmcc::sim::config::{Scheme, SystemConfig};
use rmcc::sim::detailed::run_detailed;
use rmcc::sim::lifetime::run_lifetime;
use rmcc::workloads::workload::{Scale, Workload};

fn cfg(scheme: Scheme) -> SystemConfig {
    // Use one identical config for both modes so the cache filtering and
    // counter behaviour line up exactly.
    let mut c = SystemConfig::lifetime(scheme);
    c.data_bytes = 1 << 32;
    c
}

#[test]
fn functional_stats_agree_between_modes() {
    for scheme in [Scheme::Morphable, Scheme::Rmcc] {
        let l = run_lifetime(Workload::Canneal, Scale::Tiny, None, &cfg(scheme)).expect("runs");
        let d = run_detailed(Workload::Canneal, Scale::Tiny, None, &cfg(scheme)).expect("runs");
        assert_eq!(l.meta.data_reads, d.meta.data_reads, "{scheme}: reads");
        assert_eq!(
            l.meta.counter_misses, d.meta.counter_misses,
            "{scheme}: ctr misses"
        );
        assert_eq!(
            l.meta.counter_fetches, d.meta.counter_fetches,
            "{scheme}: fetches"
        );
        assert_eq!(l.meta.relevels_l0, d.meta.relevels_l0, "{scheme}: relevels");
        assert_eq!(l.meta.memo_l0, d.meta.memo_l0, "{scheme}: memo tallies");
    }
}

#[test]
fn single_core_multicore_matches_detailed() {
    // Both timing modes drive the same shared CoreEngine; with one core and
    // the same placement seed they must be indistinguishable, down to the
    // functional metadata statistics.
    for scheme in [Scheme::Morphable, Scheme::Rmcc] {
        let d = run_detailed(Workload::Canneal, Scale::Tiny, None, &cfg(scheme)).expect("runs");
        let m =
            rmcc::sim::multicore::run_multicore(Workload::Canneal, Scale::Tiny, 1, &cfg(scheme))
                .expect("runs");
        assert_eq!(d.meta, m.meta, "{scheme}: metadata stats");
        assert_eq!(d.elapsed_ps, m.elapsed_ps, "{scheme}: elapsed");
        assert_eq!(d.instrs, m.instrs, "{scheme}: instrs");
        assert_eq!(d.llc_misses, m.llc_misses, "{scheme}: LLC misses");
        assert_eq!(
            d.mean_miss_latency_ns, m.mean_miss_latency_ns,
            "{scheme}: miss latency"
        );
    }
}

#[test]
fn rmcc_and_morphable_see_identical_demand_streams() {
    // RMCC must not change what the *core* asks for — only metadata traffic.
    let a = run_lifetime(
        Workload::Omnetpp,
        Scale::Tiny,
        None,
        &cfg(Scheme::Morphable),
    )
    .expect("runs");
    let b = run_lifetime(Workload::Omnetpp, Scale::Tiny, None, &cfg(Scheme::Rmcc)).expect("runs");
    assert_eq!(a.accesses, b.accesses);
    assert_eq!(a.llc_misses, b.llc_misses);
    assert_eq!(a.llc_writebacks, b.llc_writebacks);
    assert_eq!(a.meta.data_reads, b.meta.data_reads);
}

#[test]
fn schemes_are_deterministic_end_to_end() {
    for scheme in [
        Scheme::NonSecure,
        Scheme::Sc64,
        Scheme::Morphable,
        Scheme::Rmcc,
    ] {
        let a = run_detailed(Workload::Mcf, Scale::Tiny, None, &cfg(scheme)).expect("runs");
        let b = run_detailed(Workload::Mcf, Scale::Tiny, None, &cfg(scheme)).expect("runs");
        assert_eq!(a, b, "{scheme} must be bit-reproducible");
    }
}

#[test]
fn non_secure_is_fastest_secure_lat_is_higher() {
    let non = run_detailed(
        Workload::Canneal,
        Scale::Tiny,
        None,
        &cfg(Scheme::NonSecure),
    )
    .expect("runs");
    let mo = run_detailed(
        Workload::Canneal,
        Scale::Tiny,
        None,
        &cfg(Scheme::Morphable),
    )
    .expect("runs");
    assert!(mo.elapsed_ps >= non.elapsed_ps);
    assert!(mo.mean_miss_latency_ns >= non.mean_miss_latency_ns);
    assert!(
        mo.meta.total_requests > non.meta.total_requests,
        "metadata traffic must exist"
    );
}

#[test]
fn total_requests_reconcile_with_components() {
    let r = run_lifetime(Workload::Canneal, Scale::Tiny, None, &cfg(Scheme::Rmcc)).expect("runs");
    let m = &r.meta;
    let accounted = m.data_reads
        + m.data_writes
        + m.counter_fetches
        + m.counter_writebacks
        + m.overflow_l0_requests
        + m.overflow_hi_requests
        + m.read_triggered_writes;
    assert_eq!(m.total_requests, accounted, "request ledger must balance");
}
