//! Golden test: pin the exact epoch-resolved JSONL a seeded dynamics run
//! emits, byte for byte.
//!
//! The fixture in `tests/golden/dynamics_small.jsonl` is the full telemetry
//! series of [`DynamicsConfig::small`]. Any change to the RMCC mechanics,
//! the crypto cost model, the snapshot cadence, the metric set, or the
//! JSON rendering shows up here as a diff — regenerate the fixture only
//! when such a change is intentional:
//!
//! ```text
//! cargo run --release --example convergence_report   # eyeball the new series
//! # then dump `run_dynamics(&DynamicsConfig::small()).jsonl` over the fixture
//! ```

use rmcc::sim::dynamics::{run_dynamics, DynamicsConfig};
use rmcc::telemetry::{parse_jsonl, JsonValue};

const GOLDEN: &str = include_str!("golden/dynamics_small.jsonl");

#[test]
fn seeded_dynamics_run_matches_golden_jsonl() {
    let r = run_dynamics(&DynamicsConfig::small());
    assert_eq!(
        r.jsonl, GOLDEN,
        "telemetry series drifted from tests/golden/dynamics_small.jsonl \
         (intentional changes must regenerate the fixture)"
    );
}

#[test]
fn golden_run_is_stable_across_reruns_and_threads() {
    // Rerun stability and thread independence in one shot: four concurrent
    // runs of the same config, each compared byte-for-byte to the fixture.
    // Engines share nothing, so parallel execution must not perturb the
    // series.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let r = run_dynamics(&DynamicsConfig::small());
                assert_eq!(r.jsonl, GOLDEN, "concurrent rerun diverged");
            });
        }
    });
}

#[test]
fn golden_fixture_holds_under_the_hardened_backend() {
    // AES backends are ciphertext-identical, so flipping RMCC_BACKEND to
    // the bitsliced constant-time path must not move a single byte of the
    // telemetry series. (The env flip is benign for concurrent tests:
    // backends never change outputs.)
    std::env::set_var("RMCC_BACKEND", "hardened");
    let r = run_dynamics(&DynamicsConfig::small());
    std::env::remove_var("RMCC_BACKEND");
    assert_eq!(
        r.jsonl, GOLDEN,
        "telemetry series drifted under RMCC_BACKEND=hardened"
    );
}

#[test]
fn golden_fixture_parses_and_carries_the_headline_metrics() {
    let rows = parse_jsonl(GOLDEN).expect("fixture is well-formed JSONL");
    assert!(
        rows.len() >= 4,
        "fixture resolves only {} epochs",
        rows.len()
    );
    // Every column the acceptance criteria name is present in every row.
    for (i, row) in rows.iter().enumerate() {
        for key in [
            "epoch",
            "accesses",
            "table_hit_rate",
            "aes_saved",
            "budget_spent_epoch",
            "budget_carry_over",
            "osm",
            "conformance_ratio",
        ] {
            assert!(row.get(key).is_some(), "epoch {}: missing {key}", i + 1);
        }
    }
    // Epoch ordinals count up from 1.
    for (i, row) in rows.iter().enumerate() {
        let epoch = row.get("epoch").and_then(JsonValue::as_f64).unwrap();
        assert_eq!(epoch as usize, i + 1);
    }
    // And the fixture shows real memoization work, not a dead run.
    let last = rows.last().expect("non-empty");
    let saved = last.get("aes_saved").and_then(JsonValue::as_f64).unwrap();
    assert!(saved > 0.0, "no AES work was ever saved");
}
