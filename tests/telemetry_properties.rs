//! Property tests over the epoch-resolved telemetry: the paper's dynamics
//! must hold for *any* seeded access mix, not just the golden one.

use proptest::prelude::*;
use rmcc::core::rmcc::{Rmcc, RmccConfig};
use rmcc::secmem::counters::{CounterBlock, CounterOrg};
use rmcc::sim::dynamics::{run_dynamics, DynamicsConfig};
use rmcc::telemetry::{parse_jsonl, JsonValue};

/// Extracts one numeric column from a telemetry series.
fn column(jsonl: &str, key: &str) -> Vec<f64> {
    parse_jsonl(jsonl)
        .expect("well-formed telemetry JSONL")
        .iter()
        .map(|row| {
            row.get(key)
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("missing column {key}"))
        })
        .collect()
}

/// A short dynamics run whose access mix is drawn by the property.
fn cfg_for(seed: u64, hot_permille: u32, write_permille: u32) -> DynamicsConfig {
    DynamicsConfig {
        seed: seed | 1,
        steps: 12_000,
        epoch_accesses: 3_000,
        hot_permille,
        write_permille,
        ..DynamicsConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The observed system max only ever grows: counters never decrease,
    /// so the largest value the monitor has seen cannot shrink — under any
    /// access mix.
    #[test]
    fn osm_is_monotone_nondecreasing_across_epochs(
        seed in any::<u64>(),
        hot in 500u32..950,
        wr in 200u32..800,
    ) {
        let r = run_dynamics(&cfg_for(seed, hot, wr));
        let osm = column(&r.jsonl, "osm");
        prop_assert!(!osm.is_empty());
        for pair in osm.windows(2) {
            prop_assert!(pair[1] >= pair[0], "osm shrank: {:?}", osm);
        }
    }

    /// The budget ledger's telemetry invariant, per epoch: what RMCC spent
    /// in an epoch never exceeds that epoch's fresh allowance plus the
    /// carry-over it entered with (§IV-C1's 1% traffic bound).
    #[test]
    fn budget_spend_respects_allowance_plus_carry(
        seed in any::<u64>(),
        hot in 500u32..950,
        wr in 200u32..800,
    ) {
        let cfg = cfg_for(seed, hot, wr);
        let r = run_dynamics(&cfg);
        let allowance = RmccConfig::paper().budget_fraction * cfg.epoch_accesses as f64;
        let spent = column(&r.jsonl, "budget_spent_epoch");
        let carry = column(&r.jsonl, "budget_carry_over");
        for (i, (&s, &c)) in spent.iter().zip(&carry).enumerate() {
            prop_assert!(
                s <= allowance + c + 1e-9,
                "epoch {}: spent {s} > allowance {allowance} + carry {c}",
                i + 1
            );
            prop_assert!(c >= 0.0);
        }
    }

    /// Conformance is always a ratio in [0, 1], whatever the mix does.
    #[test]
    fn conformance_stays_in_unit_interval(
        seed in any::<u64>(),
        hot in 500u32..950,
        wr in 200u32..800,
    ) {
        let r = run_dynamics(&cfg_for(seed, hot, wr));
        for c in column(&r.jsonl, "conformance_ratio") {
            prop_assert!((0.0..=1.0).contains(&c), "conformance {c}");
        }
    }

    /// Self-reinforcement at the mechanism level: with a memoized group
    /// above the working set, write-only rounds only ever grow the set of
    /// conforming counters. Bounded at 8 rounds — the group holds 8
    /// consecutive values (Table II), so an on-ladder counter stepping +1
    /// per round stays memoized for exactly that long before it can walk
    /// off the group's end.
    #[test]
    fn conformance_is_monotone_under_bounded_write_only_rounds(
        base in 1_000u64..50_000,
        stride in 1u64..900,
        n_blocks in 4usize..24,
        rounds in 1usize..=8,
    ) {
        let mut rmcc = Rmcc::new(RmccConfig::paper());
        // One live group well above every starting counter.
        rmcc.seed_group(0, base + 100_000);
        let mut blocks: Vec<CounterBlock> = (0..n_blocks as u64)
            .map(|i| {
                CounterBlock::with_state(
                    CounterOrg::Morphable128,
                    base + i * stride,
                    vec![0; 128],
                )
            })
            .collect();
        let conformance = |rmcc: &Rmcc, blocks: &[CounterBlock]| {
            blocks.iter().filter(|cb| rmcc.table(0).probe(cb.value(0))).count() as f64
                / blocks.len() as f64
        };
        let mut prev = conformance(&rmcc, &blocks);
        prop_assert_eq!(prev, 0.0, "nothing conforms before the first write");
        for round in 0..rounds {
            for cb in blocks.iter_mut() {
                let out = rmcc.update_counter(0, cb, 0, false).unwrap();
                prop_assert!(out.new_value > 0);
            }
            let now = conformance(&rmcc, &blocks);
            prop_assert!(
                (0.0..=1.0).contains(&now),
                "round {round}: conformance {now} out of range"
            );
            prop_assert!(
                now >= prev,
                "round {round}: conformance regressed {prev} -> {now}"
            );
            prev = now;
        }
        // The budget granted the relevels something: at least one block
        // made it onto the ladder.
        prop_assert!(prev > 0.0, "no block ever conformed");
    }
}
