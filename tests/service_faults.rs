//! Per-shard fault isolation and lifecycle recovery, end to end through
//! the public facade.
//!
//! Two layers of contract:
//!
//! 1. **Blast radius** (health lifecycle off, the historical default):
//!    poisoning one shard's memoization table must be invisible to every
//!    other shard — same results, same tallies — while the victim degrades
//!    to counted full-AES fallbacks, keeps returning correct plaintext,
//!    and self-heals.
//! 2. **Deterministic recovery** (health lifecycle on): for *any* single
//!    injected fault class at *any* seed, the victim shard is quarantined,
//!    rebuilt from the intact ciphertext backing store, and readmitted
//!    with state — and all subsequent `submit` results — byte-identical to
//!    a never-faulted control twin.

use proptest::prelude::*;
use rmcc::faults::{run_chaos_campaign, ChaosConfig, ServiceFaultHarness, LADDER_SEED};

#[test]
fn poisoned_shard_is_contained_while_it_heals() {
    let faulted = ServiceFaultHarness::new(6);
    let control = ServiceFaultHarness::new(6);
    assert_eq!(
        faulted.write_read_round(0x5A),
        control.write_read_round(0x5A),
        "identical twins before the fault"
    );

    let victim = 4;
    let rung = LADDER_SEED + 1; // what round 2's writes will consult
    assert!(faulted.corrupt_shard_memo(victim, rung));
    assert!(!faulted.shard_memo_trusted(victim, rung));

    let f = faulted.write_read_round(0xC3);
    let c = control.write_read_round(0xC3);
    assert!(f.plaintexts_ok, "corruption never surfaces wrong plaintext");
    for shard in 0..6 {
        if shard == victim {
            assert_eq!(
                f.per_shard_stats[shard].table.fallbacks, 1,
                "victim pays a counted full-AES fallback"
            );
        } else {
            assert_eq!(
                f.per_shard_digest[shard], c.per_shard_digest[shard],
                "shard {shard}: results unchanged by another shard's fault"
            );
            assert_eq!(
                f.per_shard_stats[shard], c.per_shard_stats[shard],
                "shard {shard}: telemetry unchanged by another shard's fault"
            );
        }
    }

    // The fallback recomputed the entry and cleared the poison.
    assert!(faulted.shard_memo_trusted(victim, rung));
    let healed = faulted.write_read_round(0x77);
    assert!(healed.plaintexts_ok);
    assert_eq!(
        healed.per_shard_stats[victim].table.fallbacks, 1,
        "fallbacks stop growing once healed"
    );
    assert!(
        healed.per_shard_stats[victim].conformed_writes
            > f.per_shard_stats[victim].conformed_writes,
        "healed shard conforms to the ladder again"
    );
}

#[test]
fn corrupting_every_shard_still_fails_safe() {
    let h = ServiceFaultHarness::new(4);
    let warm = h.write_read_round(0x01);
    assert!(warm.plaintexts_ok);
    for shard in 0..4 {
        assert!(h.corrupt_shard_memo(shard, LADDER_SEED + 1));
    }
    let r = h.write_read_round(0x02);
    assert!(
        r.plaintexts_ok,
        "all-shard corruption still yields correct data"
    );
    for shard in 0..4 {
        assert_eq!(r.per_shard_stats[shard].table.fallbacks, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any campaign seed and shard count, every injected fault class —
    /// policy panic, counter saturation, whole-table memo poison, node
    /// replay, forged counters — ends with the victim quarantined,
    /// recovered to `Healthy`, contained (non-victim results untouched),
    /// and byte-identical to the never-faulted control twin: the
    /// architectural state digests match and the post-recovery `submit`
    /// results agree entry for entry.
    #[test]
    fn any_single_fault_class_rebuilds_byte_identical_to_the_twin(
        seed in 1u64..=u64::MAX,
        shards in 2usize..=4,
    ) {
        let report = run_chaos_campaign(&ChaosConfig::new(shards, seed));
        for o in &report.outcomes {
            prop_assert!(o.quarantined, "{}: breaker never fired", o.class.name());
            prop_assert!(o.recovered, "{}: never readmitted", o.class.name());
            prop_assert!(o.containment_ok, "{}: fault leaked across shards", o.class.name());
            prop_assert!(
                o.twin_identical,
                "{}: post-rebuild state diverged from the control twin",
                o.class.name()
            );
        }
        prop_assert!(report.final_all_healthy, "a shard ended unhealthy");
        prop_assert!(report.final_digests_equal, "final state digests diverged");
        prop_assert!(report.recovery_ok());
    }
}
