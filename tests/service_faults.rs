//! Per-shard fault isolation, end to end through the public facade.
//!
//! The sharded service's blast-radius contract: poisoning one shard's
//! memoization table (the `MemoCorruption` threat, applied through the
//! shard's policy handle) must be invisible to every other shard — same
//! results, same tallies — while the victim degrades to counted full-AES
//! fallbacks, keeps returning correct plaintext, and self-heals.

use rmcc::faults::{ServiceFaultHarness, LADDER_SEED};

#[test]
fn poisoned_shard_is_contained_while_it_heals() {
    let faulted = ServiceFaultHarness::new(6);
    let control = ServiceFaultHarness::new(6);
    assert_eq!(
        faulted.write_read_round(0x5A),
        control.write_read_round(0x5A),
        "identical twins before the fault"
    );

    let victim = 4;
    let rung = LADDER_SEED + 1; // what round 2's writes will consult
    assert!(faulted.corrupt_shard_memo(victim, rung));
    assert!(!faulted.shard_memo_trusted(victim, rung));

    let f = faulted.write_read_round(0xC3);
    let c = control.write_read_round(0xC3);
    assert!(f.plaintexts_ok, "corruption never surfaces wrong plaintext");
    for shard in 0..6 {
        if shard == victim {
            assert_eq!(
                f.per_shard_stats[shard].table.fallbacks, 1,
                "victim pays a counted full-AES fallback"
            );
        } else {
            assert_eq!(
                f.per_shard_digest[shard], c.per_shard_digest[shard],
                "shard {shard}: results unchanged by another shard's fault"
            );
            assert_eq!(
                f.per_shard_stats[shard], c.per_shard_stats[shard],
                "shard {shard}: telemetry unchanged by another shard's fault"
            );
        }
    }

    // The fallback recomputed the entry and cleared the poison.
    assert!(faulted.shard_memo_trusted(victim, rung));
    let healed = faulted.write_read_round(0x77);
    assert!(healed.plaintexts_ok);
    assert_eq!(
        healed.per_shard_stats[victim].table.fallbacks, 1,
        "fallbacks stop growing once healed"
    );
    assert!(
        healed.per_shard_stats[victim].conformed_writes
            > f.per_shard_stats[victim].conformed_writes,
        "healed shard conforms to the ladder again"
    );
}

#[test]
fn corrupting_every_shard_still_fails_safe() {
    let h = ServiceFaultHarness::new(4);
    let warm = h.write_read_round(0x01);
    assert!(warm.plaintexts_ok);
    for shard in 0..4 {
        assert!(h.corrupt_shard_memo(shard, LADDER_SEED + 1));
    }
    let r = h.write_read_round(0x02);
    assert!(
        r.plaintexts_ok,
        "all-shard corruption still yields correct data"
    );
    for shard in 0..4 {
        assert_eq!(r.per_shard_stats[shard].table.fallbacks, 1);
    }
}
