//! Shape tests for the paper's claims, at test-affordable scale.
//!
//! These assert the *direction and rough magnitude* of the paper's results
//! on tiny inputs; the full-figure magnitudes live in EXPERIMENTS.md.

use rmcc::core::area::AreaModel;
use rmcc::core::security::{attack_equation_balance, otp_repeat_probability};
use rmcc::core::table::TableConfig;
use rmcc::crypto::aes::Aes;
use rmcc::crypto::nist::{pass_rate, BitStream};
use rmcc::crypto::otp::{KeySet, PadPurpose, RmccOtp};
use rmcc::sim::config::{Scheme, SystemConfig};
use rmcc::sim::lifetime::run_lifetime;
use rmcc::workloads::workload::{Scale, Workload};

fn lifetime_cfg(scheme: Scheme) -> SystemConfig {
    let mut c = SystemConfig::lifetime(scheme);
    c.data_bytes = 1 << 32;
    c
}

/// §III / Figure 3: canneal's counter-miss rate dwarfs mcf's.
#[test]
fn counter_miss_ordering_canneal_vs_mcf() {
    let canneal = run_lifetime(
        Workload::Canneal,
        Scale::Tiny,
        None,
        &lifetime_cfg(Scheme::Morphable),
    )
    .expect("no graph needed");
    let mcf = run_lifetime(
        Workload::Mcf,
        Scale::Tiny,
        None,
        &lifetime_cfg(Scheme::Morphable),
    )
    .expect("no graph needed");
    // Tiny footprints mute the absolute rates, but the ordering holds.
    assert!(
        canneal.counter_miss_rate() >= mcf.counter_miss_rate(),
        "canneal {} < mcf {}",
        canneal.counter_miss_rate(),
        mcf.counter_miss_rate()
    );
}

/// §IV-B: starting from the converged state, the memoization tables serve
/// the overwhelming majority of counter lookups.
#[test]
fn memoization_hit_rate_is_high_from_converged_state() {
    let r = run_lifetime(
        Workload::Canneal,
        Scale::Tiny,
        None,
        &lifetime_cfg(Scheme::Rmcc),
    )
    .expect("no graph needed");
    let rate = r.meta.memo_l0.all_hit_rate();
    assert!(rate > 0.7, "hit rate {rate} too low from converged state");
}

/// §VI: RMCC's traffic overhead stays within a small multiple of the 2%
/// combined budget.
#[test]
fn traffic_overhead_is_bounded() {
    let base = run_lifetime(
        Workload::Canneal,
        Scale::Tiny,
        None,
        &lifetime_cfg(Scheme::Morphable),
    )
    .expect("no graph needed");
    let rmcc = run_lifetime(
        Workload::Canneal,
        Scale::Tiny,
        None,
        &lifetime_cfg(Scheme::Rmcc),
    )
    .expect("no graph needed");
    let overhead = rmcc.total_requests() as f64 / base.total_requests().max(1) as f64 - 1.0;
    assert!(overhead < 0.15, "overhead {overhead} runs away");
}

/// §IV-D1: one machine in ~a hundred thousand ever repeats an OTP.
#[test]
fn birthday_bound_matches_paper() {
    let p = otp_repeat_probability();
    assert!(p < 1e-4 && p > 1e-6, "p = {p}");
    let (eq, unk) = attack_equation_balance(1 << 31);
    assert!(unk == eq + 1);
}

/// §IV-E: 4 KB table + 1 KB trackers + ~4 KB multiplier.
#[test]
fn area_model_matches_paper() {
    let a = AreaModel::for_table(TableConfig::paper());
    assert_eq!(a.table_bytes, 4096);
    assert_eq!(a.tracking_bytes, 1024);
    assert_eq!(a.total_bytes(true), 9216);
}

/// §IV-D1: RMCC OTPs pass the NIST suite at the same rate as the AES
/// streams they are derived from.
#[test]
fn rmcc_otps_pass_nist_like_aes() {
    let keys = KeySet::from_master(77);
    let pipe = RmccOtp::new(keys);
    let aes = Aes::new_128(&[9u8; 16]);
    let aes_stream: Vec<u128> = (0..1024u128).map(|i| aes.encrypt_u128(i)).collect();
    let otp_stream: Vec<u128> = (0..1024u64)
        .map(|i| pipe.word_pad(i % 512, (i % 4) as u8, 1 + i / 4, PadPurpose::Encryption))
        .collect();
    let ra = pass_rate(&[BitStream::from_u128_words(&aes_stream)]);
    let ro = pass_rate(&[BitStream::from_u128_words(&otp_stream)]);
    assert!(ra > 0.8, "AES stream degenerate: {ra}");
    assert!((ra - ro).abs() < 0.2, "OTP rate {ro} vs AES rate {ra}");
}

/// §IV-D2: RMCC grows the maximum counter value, but within the same order
/// of magnitude as the baseline (paper: +24%).
#[test]
fn max_counter_growth_is_modest() {
    let base = run_lifetime(
        Workload::Canneal,
        Scale::Tiny,
        None,
        &lifetime_cfg(Scheme::Morphable),
    )
    .expect("no graph needed");
    let rmcc = run_lifetime(
        Workload::Canneal,
        Scale::Tiny,
        None,
        &lifetime_cfg(Scheme::Rmcc),
    )
    .expect("no graph needed");
    let ratio = rmcc.max_counter as f64 / base.max_counter.max(1) as f64;
    assert!(ratio < 3.0, "RMCC max-counter ratio {ratio} exploded");
}

/// Figure 4's premise: huge pages slash TLB misses.
#[test]
fn huge_pages_reduce_tlb_misses() {
    let r = run_lifetime(
        Workload::Canneal,
        Scale::Tiny,
        None,
        &lifetime_cfg(Scheme::NonSecure),
    )
    .expect("no graph needed");
    assert!(r.tlb_misses_2m <= r.tlb_misses_4k);
}
