//! End-to-end integration tests: the functional secure memory exercised
//! through every scheme, pipeline, and attack the threat model covers.

use rmcc::core::rmcc::{Rmcc, RmccConfig};
use rmcc::crypto::Backend;
use rmcc::secmem::counters::CounterOrg;
use rmcc::secmem::engine::{
    CounterUpdatePolicy, IncrementPolicy, PipelineKind, ReadError, SecureMemory,
};

const ORGS: [CounterOrg; 3] = [
    CounterOrg::Mono8,
    CounterOrg::Sc64,
    CounterOrg::Morphable128,
];
const PIPES: [PipelineKind; 2] = [PipelineKind::Sgx, PipelineKind::Rmcc];

fn pattern(block: u64, salt: u8) -> [u8; 64] {
    core::array::from_fn(|i| (block as u8).wrapping_mul(31) ^ (i as u8) ^ salt)
}

#[test]
fn roundtrip_every_org_and_pipeline() {
    for org in ORGS {
        for pipe in PIPES {
            let mut mem = SecureMemory::new(org, 1 << 22, pipe, 1);
            for block in [0u64, 1, 63, 64, 127, 128, 1000] {
                mem.write(block, pattern(block, 0)).unwrap();
            }
            for block in [0u64, 1, 63, 64, 127, 128, 1000] {
                assert_eq!(
                    mem.read(block).unwrap(),
                    pattern(block, 0),
                    "{org} / {pipe:?} block {block}"
                );
            }
        }
    }
}

#[test]
fn overwrites_always_return_latest_value() {
    let mut mem = SecureMemory::new(CounterOrg::Morphable128, 1 << 22, PipelineKind::Rmcc, 2);
    for round in 0..20u8 {
        mem.write(5, pattern(5, round)).unwrap();
        assert_eq!(mem.read(5).unwrap(), pattern(5, round));
    }
}

#[test]
fn sc64_overflow_reencryption_preserves_all_covered_data() {
    // Push one block's counter past the 7-bit minor so the whole counter
    // block relevels, then verify every *other* covered block still
    // decrypts correctly (re-encryption must be transparent).
    let mut mem = SecureMemory::new(CounterOrg::Sc64, 1 << 22, PipelineKind::Rmcc, 3);
    for b in 0..64u64 {
        mem.write(b, pattern(b, 7)).unwrap();
    }
    for _ in 0..130 {
        mem.write(0, pattern(0, 9)).unwrap();
    }
    assert!(
        mem.overflow_reencryptions() > 0,
        "relevel must have happened"
    );
    for b in 1..64u64 {
        assert_eq!(
            mem.read(b).unwrap(),
            pattern(b, 7),
            "block {b} corrupted by relevel"
        );
    }
    assert_eq!(mem.read(0).unwrap(), pattern(0, 9));
}

#[test]
fn every_tamper_vector_is_detected() {
    let mut mem = SecureMemory::new(CounterOrg::Morphable128, 1 << 22, PipelineKind::Rmcc, 4);
    mem.write(10, pattern(10, 1)).unwrap();

    // Ciphertext bit flips at every word boundary.
    for byte in [0usize, 15, 16, 31, 32, 47, 48, 63] {
        mem.tamper_data(10, byte, 0x01).unwrap();
        assert_eq!(
            mem.read(10),
            Err(ReadError::DataTampered { block: 10 }),
            "byte {byte}"
        );
        mem.tamper_data(10, byte, 0x01).unwrap(); // undo
        assert!(mem.read(10).is_ok(), "undo at byte {byte} failed");
    }

    // MAC corruption.
    mem.tamper_mac(10, 1 << 40).unwrap();
    assert!(mem.read(10).is_err());
}

#[test]
fn replay_detected_across_pipelines() {
    for pipe in PIPES {
        let mut mem = SecureMemory::new(CounterOrg::Morphable128, 1 << 22, pipe, 5);
        mem.write(77, pattern(77, 1)).unwrap();
        let stale = mem.snapshot(77).unwrap();
        mem.write(77, pattern(77, 2)).unwrap();
        mem.replay(&stale).unwrap();
        assert!(
            matches!(mem.read(77), Err(ReadError::MetadataTampered { .. })),
            "{pipe:?}: replay must be caught by the tree"
        );
    }
}

/// RMCC's memoization-aware update plugged into the functional engine:
/// counters jump to memoized values and everything still decrypts.
struct RmccPolicy(Rmcc);

impl CounterUpdatePolicy for RmccPolicy {
    fn bump(&mut self, current: u64) -> u64 {
        self.0
            .table(0)
            .nearest_memoized_above(current)
            .unwrap_or(current + 1)
    }

    fn relevel_target(&mut self, min_target: u64) -> u64 {
        match self
            .0
            .table(0)
            .nearest_memoized_above(min_target.saturating_sub(1))
        {
            Some(t) if t >= min_target => t,
            _ => min_target,
        }
    }
}

#[test]
fn functional_engine_with_real_rmcc_policy() {
    let mut rmcc = Rmcc::new(RmccConfig::paper());
    rmcc.seed_group(0, 1_000);
    rmcc.seed_group(0, 50_000);
    let mut mem = SecureMemory::with_policy(
        CounterOrg::Morphable128,
        1 << 22,
        PipelineKind::Rmcc,
        6,
        Box::new(RmccPolicy(rmcc)),
    );
    // Writes land on memoized values (1000, 1001, ...) and data is intact.
    for round in 0..5u8 {
        for b in 0..32u64 {
            mem.write(b, pattern(b, round)).unwrap();
        }
    }
    for b in 0..32u64 {
        assert_eq!(mem.read(b).unwrap(), pattern(b, 4));
        let c = mem.counter_of(b);
        assert!(c >= 1_000, "counter {c} did not jump to the memoized group");
    }
}

/// Drives one engine through writes, overwrites, reads, and a tamper
/// round-trip, and returns its architectural digest. Used to compare
/// backends: identical histories must leave identical digests.
fn drive_history(mem: &mut SecureMemory) -> u64 {
    for block in [0u64, 1, 63, 64, 127, 128, 1000] {
        mem.write(block, pattern(block, 0)).unwrap();
    }
    for round in 0..20u8 {
        mem.write(5, pattern(5, round)).unwrap();
        assert_eq!(mem.read(5).unwrap(), pattern(5, round));
    }
    mem.tamper_data(64, 3, 0x80).unwrap();
    assert_eq!(mem.read(64), Err(ReadError::DataTampered { block: 64 }));
    mem.tamper_data(64, 3, 0x80).unwrap(); // undo
    assert_eq!(mem.read(64).unwrap(), pattern(64, 0));
    mem.state_digest()
}

#[test]
fn hardened_backend_leaves_every_state_digest_unchanged() {
    // The bitsliced constant-time backend must be bit-identical to the
    // T-table path: the same history leaves the same architectural digest
    // for every counter organization and pipeline.
    for org in ORGS {
        for pipe in PIPES {
            let digest_on = |backend: Backend| {
                let mut mem = SecureMemory::with_policy_on(
                    org,
                    1 << 22,
                    pipe,
                    11,
                    Box::new(IncrementPolicy),
                    backend,
                );
                assert_eq!(mem.backend(), backend);
                drive_history(&mut mem)
            };
            assert_eq!(
                digest_on(Backend::Fast),
                digest_on(Backend::Hardened),
                "{org} / {pipe:?}: hardened digest diverged from fast"
            );
        }
    }
}

#[test]
fn hardened_env_rerun_matches_the_reference_backend() {
    // The env-driven constructor path under RMCC_BACKEND=hardened: the
    // same workload as the explicit-backend reference must round-trip and
    // land on the same digest. Backends never change outputs, so the
    // process-global env flip is benign for any concurrently constructed
    // engine.
    let reference = {
        let mut mem = SecureMemory::with_policy_on(
            CounterOrg::Morphable128,
            1 << 22,
            PipelineKind::Rmcc,
            12,
            Box::new(IncrementPolicy),
            Backend::Reference,
        );
        drive_history(&mut mem)
    };
    std::env::set_var("RMCC_BACKEND", "hardened");
    let mut mem = SecureMemory::new(CounterOrg::Morphable128, 1 << 22, PipelineKind::Rmcc, 12);
    assert_eq!(mem.backend(), Backend::Hardened, "env selection failed");
    assert_eq!(
        drive_history(&mut mem),
        reference,
        "hardened env run diverged from the byte-wise reference"
    );
    std::env::remove_var("RMCC_BACKEND");
}

#[test]
fn distinct_keys_produce_distinct_ciphertexts() {
    // Same plaintext, same addresses, different master keys: the memory
    // images must differ (no key-independent leakage). Observable via MACs.
    let mut a = SecureMemory::new(CounterOrg::Sc64, 1 << 22, PipelineKind::Rmcc, 100);
    let mut b = SecureMemory::new(CounterOrg::Sc64, 1 << 22, PipelineKind::Rmcc, 101);
    a.write(0, [1u8; 64]).unwrap();
    b.write(0, [1u8; 64]).unwrap();
    // Cross-reading is impossible through the public API; instead confirm
    // both verify under their own keys and tamper-detection still works
    // independently.
    assert!(a.read(0).is_ok());
    assert!(b.read(0).is_ok());
    a.tamper_data(0, 0, 1).unwrap();
    assert!(a.read(0).is_err());
    assert!(
        b.read(0).is_ok(),
        "tampering one machine must not affect the other"
    );
}
