//! Convergence tests: lock down the paper's self-reinforcement dynamics
//! (§IV-B, Figures 6–8) on the seeded dynamics workload.
//!
//! These assert the *shape* of the epoch series, not exact bytes (the
//! golden test does that): conformance and the table hit rate must
//! actually improve as the run proceeds, or the "self-reinforcing" part
//! of RMCC has regressed even if everything still computes.

use rmcc::sim::dynamics::{run_dynamics, DynamicsConfig};
use rmcc::telemetry::{parse_jsonl, JsonValue};

/// Parses the series and extracts one numeric column per epoch.
fn column(jsonl: &str, key: &str) -> Vec<f64> {
    parse_jsonl(jsonl)
        .expect("well-formed telemetry JSONL")
        .iter()
        .map(|row| {
            row.get(key)
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("missing column {key}"))
        })
        .collect()
}

/// Rows covering only *full* epochs (the trailing snapshot flushed by
/// `finish_telemetry` can cover a partial epoch, whose noisier per-epoch
/// rates should not gate monotonicity).
fn full_epochs(jsonl: &str, key: &str, epoch_accesses: u64) -> Vec<f64> {
    let accesses = column(jsonl, "accesses");
    column(jsonl, key)
        .into_iter()
        .zip(accesses)
        .filter(|&(_, a)| (a as u64).is_multiple_of(epoch_accesses))
        .map(|(v, _)| v)
        .collect()
}

#[test]
fn conformance_improves_from_first_to_final_epoch() {
    let r = run_dynamics(&DynamicsConfig::small());
    let conf = column(&r.jsonl, "conformance_ratio");
    assert!(conf.len() >= 4, "only {} epochs resolved", conf.len());
    let (first, last) = (conf[0], *conf.last().expect("non-empty"));
    assert!(
        last > first,
        "conformance did not improve: {first:.4} -> {last:.4}"
    );
    // The working set ends up overwhelmingly on memoized values — the
    // observed series converges to ~0.9 from ~0.3.
    assert!(last > 0.5, "final conformance only {last:.4}");
    for &c in &conf {
        assert!((0.0..=1.0).contains(&c), "conformance {c} out of range");
    }
}

#[test]
fn cumulative_table_hit_rate_climbs_epoch_over_epoch() {
    let cfg = DynamicsConfig::small();
    let r = run_dynamics(&cfg);
    let hit = full_epochs(&r.jsonl, "table_hit_rate", cfg.epoch_accesses);
    assert!(hit.len() >= 4, "only {} full epochs", hit.len());
    // Self-reinforcement: each full epoch's cumulative hit rate is at
    // least the previous one's (writes keep conforming the working set
    // to the table, so lookups keep getting luckier).
    for pair in hit.windows(2) {
        assert!(
            pair[1] >= pair[0],
            "cumulative hit rate regressed: {:.4} -> {:.4} (series {hit:?})",
            pair[0],
            pair[1]
        );
    }
    let (first, last) = (hit[0], *hit.last().expect("non-empty"));
    assert!(
        last >= 2.0 * first,
        "hit rate barely moved: {first:.4} -> {last:.4}"
    );
}

#[test]
fn table_population_and_osm_grow_monotonically() {
    let r = run_dynamics(&DynamicsConfig::small());
    for key in ["osm", "table_insertions", "aes_saved"] {
        let series = column(&r.jsonl, key);
        for pair in series.windows(2) {
            assert!(
                pair[1] >= pair[0],
                "{key} went backwards: {:?} -> {:?}",
                pair[0],
                pair[1]
            );
        }
    }
    // The monitor actually inserted groups (the bootstrap worked).
    let inserts = column(&r.jsonl, "table_insertions");
    assert!(*inserts.last().expect("non-empty") >= 2.0);
}

#[test]
fn rmcc_saves_aes_work_where_morphable_cannot() {
    let rmcc = run_dynamics(&DynamicsConfig::small());
    let mut base_cfg = DynamicsConfig::small();
    base_cfg.scheme = rmcc::sim::config::Scheme::Morphable;
    let base = run_dynamics(&base_cfg);
    assert!(rmcc.crypto.aes_saved > 0, "RMCC saved nothing");
    assert_eq!(
        base.crypto.aes_saved, 0,
        "a non-memoizing scheme cannot save AES work"
    );
}
