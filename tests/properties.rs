//! Property-based tests over the stack's core invariants.

use proptest::prelude::*;
use rmcc::core::rmcc::{Rmcc, RmccConfig};
use rmcc::core::table::{MemoizationTable, TableConfig};
use rmcc::crypto::clmul::{clmul128, clmul64};
use rmcc::crypto::mac::{compute_mac, gf64_mul, verify_mac, xor_with_pads, MacKeys};
use rmcc::crypto::otp::{KeySet, OtpPipeline, RmccOtp, SgxOtp};
use rmcc::faults::{FaultHarness, FaultKind};
use rmcc::secmem::counters::{CounterBlock, CounterOrg};
use rmcc::secmem::engine::{PipelineKind, SecureMemory};

proptest! {
    /// Encrypt-then-decrypt is the identity for any plaintext, address, and
    /// counter, under both pipelines.
    #[test]
    fn encryption_roundtrips(
        plain in prop::array::uniform32(any::<u8>()),
        addr in 0u64..(1 << 40),
        ctr in 0u64..(1 << 50),
        sgx in any::<bool>(),
    ) {
        let keys = KeySet::from_master(42);
        let pads = if sgx {
            SgxOtp::new(keys).block_pads(addr, ctr)
        } else {
            RmccOtp::new(keys).block_pads(addr, ctr)
        };
        let mut block = [0u8; 64];
        block[..32].copy_from_slice(&plain);
        block[32..].copy_from_slice(&plain);
        let cipher = xor_with_pads(&block, &pads);
        prop_assert_eq!(xor_with_pads(&cipher, &pads), block);
    }

    /// MACs verify on authentic data and fail on any single flipped bit.
    #[test]
    fn macs_catch_any_flip(
        seed in any::<u64>(),
        pad in any::<u128>(),
        byte in 0usize..64,
        bit in 0u8..8,
    ) {
        let keys = MacKeys::from_seed(seed);
        let mut block = [0u8; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (seed as u8).wrapping_add(i as u8);
        }
        let mac = compute_mac(&keys, &block, pad);
        prop_assert!(verify_mac(&keys, &block, pad, mac));
        block[byte] ^= 1 << bit;
        prop_assert!(!verify_mac(&keys, &block, pad, mac));
    }

    /// GF(2^64) multiplication forms a commutative ring with XOR.
    #[test]
    fn gf64_ring_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(gf64_mul(a, b), gf64_mul(b, a));
        prop_assert_eq!(gf64_mul(gf64_mul(a, b), c), gf64_mul(a, gf64_mul(b, c)));
        prop_assert_eq!(gf64_mul(a, b ^ c), gf64_mul(a, b) ^ gf64_mul(a, c));
        prop_assert_eq!(gf64_mul(a, 1), a);
    }

    /// Carry-less multiplication is commutative and distributes over XOR at
    /// both widths.
    #[test]
    fn clmul_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(clmul64(a, b), clmul64(b, a));
        prop_assert_eq!(clmul64(a, b ^ c), clmul64(a, b) ^ clmul64(a, c));
        let (x, y) = (a as u128 | ((c as u128) << 64), b as u128);
        prop_assert_eq!(clmul128(x, y), clmul128(y, x));
    }

    /// A counter block never decreases any counter, never reuses a value
    /// for a slot, and relevels move every slot forward.
    #[test]
    fn counters_strictly_increase(
        org_sel in 0usize..3,
        ops in prop::collection::vec((0usize..64, 1u64..200), 1..300),
    ) {
        let org = [CounterOrg::Mono8, CounterOrg::Sc64, CounterOrg::Morphable128][org_sel];
        let mut cb = CounterBlock::new(org);
        let slots = org.coverage();
        let mut seen: Vec<Vec<u64>> = vec![Vec::new(); slots];
        for (slot, delta) in ops {
            let slot = slot % slots;
            let target = cb.value(slot) + delta;
            let before: Vec<u64> = cb.values().collect();
            match cb.try_write(slot, target) {
                Ok(()) => {
                    prop_assert_eq!(cb.value(slot), target);
                    // No other slot moved.
                    for (s, prev) in before.iter().enumerate() {
                        if s != slot {
                            prop_assert_eq!(cb.value(s), *prev);
                        }
                    }
                }
                Err(of) => {
                    prop_assert!(of.min_relevel_target > cb.max_value());
                    cb.relevel(of.min_relevel_target);
                    for (s, prev) in before.iter().enumerate() {
                        prop_assert!(cb.value(s) >= *prev, "slot {} went backwards", s);
                    }
                }
            }
            let v = cb.value(slot);
            prop_assert!(!seen[slot].contains(&v), "slot {} reused value {}", slot, v);
            seen[slot].push(v);
        }
    }

    /// The memoization-aware update always lands on a memoized value when
    /// one is reachable, never decreases a counter, and never spends budget
    /// it does not have.
    #[test]
    fn memo_update_invariants(
        starts in prop::collection::vec(10u64..100_000, 1..16),
        writes in prop::collection::vec(0usize..128, 1..200),
    ) {
        let mut rmcc = Rmcc::new(RmccConfig::paper());
        for s in &starts {
            rmcc.seed_group(0, *s);
        }
        let mut cb = CounterBlock::new(CounterOrg::Morphable128);
        for slot in writes {
            let before = cb.value(slot);
            let out = rmcc.update_counter(0, &mut cb, slot, false).unwrap();
            prop_assert!(out.new_value > before);
            prop_assert_eq!(cb.value(slot), out.new_value);
            if rmcc.table(0).nearest_memoized_above(before).is_some() && out.charged_requests > 0 {
                prop_assert!(out.releveled);
            }
        }
        // The budget ledger never goes negative.
        prop_assert!(rmcc.budget(0).available() >= 0.0);
    }

    /// Table lookups after an insert hit the whole group and nothing else
    /// nearby; nearest-above always returns a memoized value.
    #[test]
    fn table_group_semantics(start in 0u64..1_000_000, probe in 0u64..1_000_010) {
        let mut t = MemoizationTable::new(TableConfig::paper());
        t.insert_group(start);
        let in_group = probe >= start && probe < start + 8;
        prop_assert_eq!(t.probe(probe), in_group);
        if let Some(next) = t.nearest_memoized_above(probe) {
            prop_assert!(next > probe);
            prop_assert!(t.probe(next));
        }
    }

    /// Threat-model invariant (the failure-semantics table in DESIGN.md):
    /// after any single injected fault, reading the victim block either
    /// returns a typed error or the exact last-written plaintext — never a
    /// silently different value.
    #[test]
    fn single_fault_is_detected_or_harmless(
        seed in any::<u64>(),
        org_sel in 0usize..3,
        sgx in any::<bool>(),
        block in 0u64..256,
        fault in 0usize..6,
        byte in 0usize..64,
        bit in 0u8..8,
    ) {
        let org = [CounterOrg::Mono8, CounterOrg::Sc64, CounterOrg::Morphable128][org_sel];
        let pipeline = if sgx { PipelineKind::Sgx } else { PipelineKind::Rmcc };
        let mut mem = SecureMemory::new(org, 1 << 20, pipeline, seed);

        // First write: the stale images every rollback/replay fault restores.
        let mut old = [0u8; 64];
        for (i, b) in old.iter_mut().enumerate() {
            *b = (seed as u8) ^ (i as u8);
        }
        mem.write(block, old).unwrap();
        let replay_snap = mem.snapshot(block).unwrap();
        let l0 = mem.layout().l0_index(block);
        let node_snap = mem.snapshot_node(0, l0).unwrap();
        let data_snap = mem.data_snapshot(block).unwrap();

        // Second write: the plaintext a correct read must return.
        let mut last = old;
        last[byte] ^= 0xa5;
        mem.write(block, last).unwrap();

        match fault {
            0 => mem.tamper_data(block, byte, 1 << bit).unwrap(),
            1 => mem.tamper_mac(block, 1u64 << bit).unwrap(),
            2 => mem.replay(&replay_snap).unwrap(),
            3 => mem.replay_node(&node_snap),
            4 => mem.restore_data(&data_snap),
            _ => {
                let forged = mem.observed_max() + 1;
                mem.forge_node_counters(0, l0, forged).unwrap();
            }
        }

        match mem.read(block) {
            Err(_) => {}
            Ok(got) => prop_assert_eq!(got, last),
        }
    }

    /// The harness-level statement of the same invariant, which also covers
    /// the RMCC memoization-table fault class: every fault classifies as
    /// detected or fail-safe, never as silent corruption, and the memory
    /// reads back intact after each healed fault.
    #[test]
    fn harness_faults_are_always_safe(
        seed in any::<u64>(),
        sgx in any::<bool>(),
        kinds in prop::collection::vec(0usize..FaultKind::ALL.len(), 1..10),
    ) {
        let pipeline = if sgx { PipelineKind::Sgx } else { PipelineKind::Rmcc };
        let mut h = FaultHarness::new(CounterOrg::Morphable128, pipeline, seed, 16, 1 << 20);
        for k in kinds {
            let kind = FaultKind::ALL[k];
            let outcome = h.inject(kind);
            prop_assert!(outcome.is_safe(), "{:?} classified {:?}", kind, outcome);
        }
        prop_assert!(h.verify_all());
    }
}
